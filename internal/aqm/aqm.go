// Package aqm implements the queueing disciplines evaluated by the paper:
// a FIFO tail-drop queue standing in for Linux's pfifo_fast, CoDel
// (RFC 8289), FQ-CoDel (RFC 8290), and PIE (RFC 8033). Each discipline can
// optionally mark ECN-capable packets (set CE) instead of dropping them.
//
// Disciplines are passive data structures driven by the owning link: the
// link calls Enqueue when a packet arrives at the queue and Dequeue when the
// transmitter is ready for the next packet, passing the current virtual
// time. All AQM state updates are done lazily from those two entry points,
// which keeps the disciplines engine-agnostic and deterministic.
package aqm

import (
	"element/internal/pkt"
	"element/internal/units"
)

// Discipline is a queueing discipline instance for a single link direction.
type Discipline interface {
	// Enqueue offers a packet to the queue at virtual time now. It reports
	// false if the packet was dropped (tail drop or AQM drop).
	Enqueue(p *pkt.Packet, now units.Time) bool
	// Dequeue removes and returns the next packet to transmit, or nil if
	// the queue is empty. AQMs may drop packets internally before
	// returning one.
	Dequeue(now units.Time) *pkt.Packet
	// Len reports the number of queued packets.
	Len() int
	// Bytes reports the number of queued bytes (wire sizes).
	Bytes() int
	// Stats reports cumulative counters for the discipline.
	Stats() Stats
	// Name reports the discipline's name for reports ("pfifo_fast", ...).
	Name() string
}

// Stats are cumulative per-discipline counters.
type Stats struct {
	Enqueued  int // packets accepted
	Dequeued  int // packets handed to the link
	TailDrops int // drops because the queue was full
	AQMDrops  int // drops decided by the AQM law
	ECNMarks  int // packets CE-marked instead of dropped
}

// Config holds the knobs shared by all disciplines.
type Config struct {
	// LimitPackets caps the queue length in packets (tail drop beyond it).
	// Zero means the discipline default.
	LimitPackets int
	// ECN makes the discipline CE-mark ECN-capable packets instead of
	// AQM-dropping them (tail drops still drop).
	ECN bool
}

// dropOrMark applies an AQM "drop" decision to p honoring ECN: if ECN is
// enabled and the packet is ECN-capable it is marked and kept. It reports
// true if the packet was (or would be) dropped, false if it was marked.
func dropOrMark(cfg Config, st *Stats, p *pkt.Packet) bool {
	if cfg.ECN && p.ECT {
		p.CE = true
		st.ECNMarks++
		return false
	}
	st.AQMDrops++
	return true
}

// fifoRing is a slice-backed FIFO of packets shared by the disciplines.
type fifoRing struct {
	items []*pkt.Packet
	head  int
	bytes int
}

func (q *fifoRing) push(p *pkt.Packet) {
	q.items = append(q.items, p)
	q.bytes += p.Size()
}

func (q *fifoRing) pop() *pkt.Packet {
	if q.head >= len(q.items) {
		return nil
	}
	p := q.items[q.head]
	q.items[q.head] = nil
	q.head++
	q.bytes -= p.Size()
	// Reclaim space once the dead prefix dominates.
	if q.head > 64 && q.head*2 >= len(q.items) {
		n := copy(q.items, q.items[q.head:])
		q.items = q.items[:n]
		q.head = 0
	}
	return p
}

func (q *fifoRing) len() int { return len(q.items) - q.head }
