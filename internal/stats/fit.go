package stats

import "math"

// This file holds the model-fitting half of the statistics toolkit: the
// hypothesis harness (internal/hypotheses) fits simulator output against
// the closed-form twin models (internal/twin) with ordinary least squares,
// and judges the fit on R², slope confidence intervals, and monotonicity.

// LinFit is an ordinary-least-squares line fit y = Slope·x + Intercept.
type LinFit struct {
	Slope     float64
	Intercept float64
	// R2 is the coefficient of determination of the fit. A degenerate
	// input (fewer than two distinct x, or zero y variance with zero
	// residual) reports 1 when the line explains everything and 0
	// otherwise.
	R2 float64
	// SlopeStderr is the standard error of the slope estimate (0 when
	// n < 3 leaves no residual degrees of freedom).
	SlopeStderr float64
	N           int
}

// FitLinear computes the OLS fit of ys against xs. Mismatched or
// too-short inputs return a zero LinFit with N holding the usable length.
func FitLinear(xs, ys []float64) LinFit {
	n := len(xs)
	if len(ys) < n {
		n = len(ys)
	}
	f := LinFit{N: n}
	if n < 2 {
		return f
	}
	var sx, sy float64
	for i := 0; i < n; i++ {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var sxx, sxy, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		// All x identical: no slope is identifiable.
		f.Intercept = my
		return f
	}
	f.Slope = sxy / sxx
	f.Intercept = my - f.Slope*mx
	var sse float64
	for i := 0; i < n; i++ {
		r := ys[i] - (f.Slope*xs[i] + f.Intercept)
		sse += r * r
	}
	switch {
	case syy > 0:
		f.R2 = 1 - sse/syy
	case sse == 0:
		f.R2 = 1
	}
	if n > 2 && sse > 0 {
		f.SlopeStderr = math.Sqrt(sse / float64(n-2) / sxx)
	}
	return f
}

// SlopeCI reports the z-score confidence interval of the fitted slope
// (z = 1.96 for ~95%). A fit without a standard error collapses to the
// point estimate.
func (f LinFit) SlopeCI(z float64) (lo, hi float64) {
	return f.Slope - z*f.SlopeStderr, f.Slope + z*f.SlopeStderr
}

// MonotoneNondecreasing reports whether ys is non-decreasing along
// increasing xs, tolerating dips of up to tol (absolute, in y units) —
// stochastic sweeps jitter, and the check should flag reversals of the
// physics, not sampling noise. Points are compared in x order; ties in x
// are averaged first.
func MonotoneNondecreasing(xs, ys []float64, tol float64) bool {
	bx, by := binByX(xs, ys)
	for i := 1; i < len(bx); i++ {
		if by[i] < by[i-1]-tol {
			return false
		}
	}
	return true
}

// Spearman computes Spearman's rank correlation between xs and ys — the
// scale-free monotonicity score the hypothesis verdicts report alongside
// the thresholded check. Ties receive midranks.
func Spearman(xs, ys []float64) float64 {
	n := len(xs)
	if len(ys) < n {
		n = len(ys)
	}
	if n < 2 {
		return 0
	}
	rx, ry := midranks(xs[:n]), midranks(ys[:n])
	return pearson(rx, ry)
}

func pearson(xs, ys []float64) float64 {
	n := len(xs)
	var sx, sy float64
	for i := 0; i < n; i++ {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var sxx, syy, sxy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		syy += dy * dy
		sxy += dx * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

func midranks(v []float64) []float64 {
	n := len(v)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	// Insertion sort: inputs are sweep-sized (tens of points).
	for i := 1; i < n; i++ {
		for j := i; j > 0 && v[idx[j]] < v[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && v[idx[j+1]] == v[idx[i]] {
			j++
		}
		mid := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = mid
		}
		i = j + 1
	}
	return ranks
}

// binByX groups equal x values and averages their ys, returning both
// series sorted by x. The monotonicity check uses it so multi-seed sweeps
// (five y values per sweep level) compare level means, not raw draws.
func binByX(xs, ys []float64) (bx, by []float64) {
	n := len(xs)
	if len(ys) < n {
		n = len(ys)
	}
	type bin struct {
		x, sum float64
		cnt    int
	}
	var bins []bin
	for i := 0; i < n; i++ {
		found := false
		for j := range bins {
			if bins[j].x == xs[i] {
				bins[j].sum += ys[i]
				bins[j].cnt++
				found = true
				break
			}
		}
		if !found {
			bins = append(bins, bin{x: xs[i], sum: ys[i], cnt: 1})
		}
	}
	for i := 1; i < len(bins); i++ {
		for j := i; j > 0 && bins[j].x < bins[j-1].x; j-- {
			bins[j], bins[j-1] = bins[j-1], bins[j]
		}
	}
	bx = make([]float64, len(bins))
	by = make([]float64, len(bins))
	for i, b := range bins {
		bx[i] = b.x
		by[i] = b.sum / float64(b.cnt)
	}
	return bx, by
}

// MeanCI reports the mean of xs and the z-score half-width of its
// confidence interval (z = 1.96 for ~95%).
func MeanCI(xs []float64, z float64) (mean, half float64) {
	mean, stdev := MeanStdev(xs)
	if len(xs) < 2 {
		return mean, 0
	}
	return mean, z * stdev / math.Sqrt(float64(len(xs)))
}
