package stats

import (
	"testing"
	"testing/quick"

	"element/internal/units"
)

func TestSeriesMeanUnweighted(t *testing.T) {
	s := Series{
		{Delay: 10 * units.Millisecond},
		{Delay: 20 * units.Millisecond},
		{Delay: 30 * units.Millisecond},
	}
	if got := s.Mean(); got != 20*units.Millisecond {
		t.Fatalf("Mean = %v", got)
	}
}

func TestSeriesMeanWeighted(t *testing.T) {
	s := Series{
		{Delay: 10 * units.Millisecond, Bytes: 900},
		{Delay: 100 * units.Millisecond, Bytes: 100},
	}
	if got := s.Mean(); got != 19*units.Millisecond {
		t.Fatalf("Mean = %v", got)
	}
}

func TestSeriesEmpty(t *testing.T) {
	var s Series
	if s.Mean() != 0 || s.Stdev() != 0 {
		t.Fatal("empty series stats nonzero")
	}
	if _, ok := s.At(0); ok {
		t.Fatal("At on empty returned ok")
	}
}

func TestCDFBasics(t *testing.T) {
	vals := []units.Duration{
		4 * units.Millisecond, units.Millisecond,
		3 * units.Millisecond, 2 * units.Millisecond,
	}
	c := NewCDF(vals)
	if c.N() != 4 {
		t.Fatalf("N = %d", c.N())
	}
	if got := c.FractionBelow(2 * units.Millisecond); got != 0.5 {
		t.Fatalf("FractionBelow = %v", got)
	}
	if got := c.FractionBelow(10 * units.Millisecond); got != 1 {
		t.Fatalf("FractionBelow(max) = %v", got)
	}
	if got := c.Percentile(0); got != units.Millisecond {
		t.Fatalf("P0 = %v", got)
	}
	if got := c.Percentile(100); got != 4*units.Millisecond {
		t.Fatalf("P100 = %v", got)
	}
	if pts := c.Points(4); len(pts) != 4 || pts[3][1] != 1 {
		t.Fatalf("Points = %v", pts)
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if c.FractionBelow(units.Second) != 0 || c.Percentile(50) != 0 || c.Points(5) != nil {
		t.Fatal("empty CDF misbehaves")
	}
}

func TestMeanStdev(t *testing.T) {
	m, sd := MeanStdev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if m != 5 {
		t.Fatalf("mean = %v", m)
	}
	if sd != 2 {
		t.Fatalf("stdev = %v", sd)
	}
	if m, sd := MeanStdev(nil); m != 0 || sd != 0 {
		t.Fatal("empty MeanStdev nonzero")
	}
}

func TestJainFairness(t *testing.T) {
	if got := JainFairness([]float64{1, 1, 1}); got != 1 {
		t.Fatalf("equal shares = %v", got)
	}
	if got := JainFairness([]float64{1, 0, 0}); got < 0.33 || got > 0.34 {
		t.Fatalf("single hog = %v", got)
	}
	if JainFairness(nil) != 0 || JainFairness([]float64{0, 0}) != 0 {
		t.Fatal("degenerate inputs")
	}
}

// Property: CDF percentiles are monotone and FractionBelow is a
// nondecreasing step function consistent with N.
func TestPropertyCDFMonotone(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]units.Duration, len(raw))
		for i, r := range raw {
			vals[i] = units.Duration(r)
		}
		c := NewCDF(vals)
		prev := units.Duration(-1)
		for p := 0.0; p <= 100; p += 7 {
			v := c.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		return c.FractionBelow(c.Percentile(100)) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: interpolation stays within the envelope of neighbouring points.
func TestPropertySeriesAtWithinEnvelope(t *testing.T) {
	f := func(deltas []uint16) bool {
		if len(deltas) < 2 {
			return true
		}
		s := make(Series, 0, len(deltas))
		at := units.Time(0)
		for _, d := range deltas {
			at = at.Add(units.Duration(d%1000+1) * units.Millisecond)
			s = append(s, Sample{At: at, Delay: units.Duration(d) * units.Microsecond})
		}
		for i := 0; i+1 < len(s); i++ {
			mid := s[i].At + (s[i+1].At-s[i].At)/2
			v, ok := s.At(mid)
			if !ok {
				return false
			}
			lo, hi := s[i].Delay, s[i+1].Delay
			if lo > hi {
				lo, hi = hi, lo
			}
			if v < lo || v > hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
