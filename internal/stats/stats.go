// Package stats provides the small statistics toolkit the experiments use:
// delay sample series (byte-weighted means, interpolation), empirical CDFs,
// and scalar summaries.
package stats

import (
	"math"
	"sort"

	"element/internal/units"
)

// Sample is one delay observation: a delay value known at time At covering
// Bytes stream bytes.
type Sample struct {
	At    units.Time
	Delay units.Duration
	Bytes int
}

// Series is an ordered-by-time collection of samples.
type Series []Sample

// Mean reports the byte-weighted mean delay (samples with zero Bytes count
// as weight 1, so purely time-sampled series still average sensibly).
func (s Series) Mean() units.Duration {
	if len(s) == 0 {
		return 0
	}
	var total, weight float64
	for _, x := range s {
		w := float64(x.Bytes)
		if w == 0 {
			w = 1
		}
		total += float64(x.Delay) * w
		weight += w
	}
	return units.Duration(total / weight)
}

// Stdev reports the weighted standard deviation of the delays.
func (s Series) Stdev() units.Duration {
	if len(s) < 2 {
		return 0
	}
	mean := float64(s.Mean())
	var acc, weight float64
	for _, x := range s {
		w := float64(x.Bytes)
		if w == 0 {
			w = 1
		}
		d := float64(x.Delay) - mean
		acc += d * d * w
		weight += w
	}
	return units.Duration(math.Sqrt(acc / weight))
}

// At interpolates the series value at time t, as the paper does when
// comparing ELEMENT's periodic estimates against the continuous kernel
// trace. The boolean is false when the series is empty.
func (s Series) At(t units.Time) (units.Duration, bool) {
	if len(s) == 0 {
		return 0, false
	}
	i := sort.Search(len(s), func(i int) bool { return s[i].At >= t })
	switch {
	case i == 0:
		return s[0].Delay, true
	case i == len(s):
		return s[len(s)-1].Delay, true
	}
	a, b := s[i-1], s[i]
	if b.At == a.At {
		return b.Delay, true
	}
	frac := float64(t-a.At) / float64(b.At-a.At)
	return a.Delay + units.Duration(frac*float64(b.Delay-a.Delay)), true
}

// Delays extracts the raw delay values.
func (s Series) Delays() []units.Duration {
	out := make([]units.Duration, len(s))
	for i, x := range s {
		out[i] = x.Delay
	}
	return out
}

// CDF is an empirical cumulative distribution over durations.
type CDF struct {
	sorted []units.Duration
}

// NewCDF builds a CDF from values (which it copies and sorts).
func NewCDF(values []units.Duration) CDF {
	v := make([]units.Duration, len(values))
	copy(v, values)
	sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
	return CDF{sorted: v}
}

// N reports the number of points.
func (c CDF) N() int { return len(c.sorted) }

// FractionBelow reports P(X <= x).
func (c CDF) FractionBelow(x units.Duration) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.Search(len(c.sorted), func(i int) bool { return c.sorted[i] > x })
	return float64(i) / float64(len(c.sorted))
}

// Percentile reports the p-th percentile (p in [0,100]).
func (c CDF) Percentile(p float64) units.Duration {
	if len(c.sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return c.sorted[0]
	}
	if p >= 100 {
		return c.sorted[len(c.sorted)-1]
	}
	idx := int(p / 100 * float64(len(c.sorted)-1))
	return c.sorted[idx]
}

// Points samples the CDF at n evenly spaced fractions for plotting, and
// returns (value, fraction) pairs.
func (c CDF) Points(n int) [][2]float64 {
	if len(c.sorted) == 0 || n <= 0 {
		return nil
	}
	out := make([][2]float64, 0, n)
	for i := 1; i <= n; i++ {
		f := float64(i) / float64(n)
		idx := int(f*float64(len(c.sorted))) - 1
		if idx < 0 {
			idx = 0
		}
		out = append(out, [2]float64{c.sorted[idx].Seconds(), f})
	}
	return out
}

// MeanStdev reports the mean and standard deviation of a float slice.
func MeanStdev(xs []float64) (mean, stdev float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	var acc float64
	for _, x := range xs {
		acc += (x - mean) * (x - mean)
	}
	return mean, math.Sqrt(acc / float64(len(xs)))
}

// JainFairness computes Jain's fairness index over per-flow throughputs.
func JainFairness(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sq)
}
