package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestFitLinearExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{3, 5, 7, 9, 11} // y = 2x + 1
	f := FitLinear(xs, ys)
	if math.Abs(f.Slope-2) > 1e-12 || math.Abs(f.Intercept-1) > 1e-12 {
		t.Fatalf("fit = %+v, want slope 2 intercept 1", f)
	}
	if f.R2 != 1 {
		t.Fatalf("R2 = %v, want 1", f.R2)
	}
	if f.SlopeStderr != 0 {
		t.Fatalf("stderr = %v, want 0 for exact fit", f.SlopeStderr)
	}
}

func TestFitLinearNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var xs, ys []float64
	for i := 0; i < 200; i++ {
		x := float64(i) / 10
		xs = append(xs, x)
		ys = append(ys, 3*x+2+rng.NormFloat64()*0.5)
	}
	f := FitLinear(xs, ys)
	if math.Abs(f.Slope-3) > 0.1 {
		t.Fatalf("slope = %v, want ≈3", f.Slope)
	}
	if f.R2 < 0.98 {
		t.Fatalf("R2 = %v, want ≥0.98", f.R2)
	}
	lo, hi := f.SlopeCI(1.96)
	if lo > 3 || hi < 3 {
		t.Fatalf("95%% CI [%v, %v] excludes the true slope 3", lo, hi)
	}
}

func TestFitLinearDegenerate(t *testing.T) {
	if f := FitLinear([]float64{1}, []float64{2}); f.N != 1 || f.Slope != 0 {
		t.Fatalf("single point fit = %+v", f)
	}
	f := FitLinear([]float64{2, 2, 2}, []float64{1, 2, 3})
	if f.Slope != 0 || f.Intercept != 2 {
		t.Fatalf("identical-x fit = %+v, want flat line at mean", f)
	}
}

func TestMonotoneNondecreasing(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if !MonotoneNondecreasing(xs, []float64{1, 2, 2, 5}, 0) {
		t.Fatal("nondecreasing series rejected")
	}
	if MonotoneNondecreasing(xs, []float64{1, 5, 2, 6}, 0.5) {
		t.Fatal("large dip accepted")
	}
	if !MonotoneNondecreasing(xs, []float64{1, 2, 1.9, 3}, 0.2) {
		t.Fatal("within-tolerance dip rejected")
	}
	// Ties in x average before comparison: (1,1),(1,3) → mean 2 at x=1.
	if !MonotoneNondecreasing([]float64{1, 1, 2}, []float64{1, 3, 2.5}, 0) {
		t.Fatal("tie-averaged series rejected")
	}
}

func TestSpearman(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Spearman(xs, []float64{2, 4, 9, 16, 30}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("monotone Spearman = %v, want 1", got)
	}
	if got := Spearman(xs, []float64{30, 16, 9, 4, 2}); math.Abs(got+1) > 1e-12 {
		t.Fatalf("reversed Spearman = %v, want -1", got)
	}
}

func TestMeanCI(t *testing.T) {
	mean, half := MeanCI([]float64{1, 2, 3, 4, 5}, 1.96)
	if mean != 3 {
		t.Fatalf("mean = %v", mean)
	}
	if half <= 0 {
		t.Fatalf("half-width = %v, want > 0", half)
	}
	if _, h := MeanCI([]float64{1}, 1.96); h != 0 {
		t.Fatalf("single-sample half-width = %v, want 0", h)
	}
}
