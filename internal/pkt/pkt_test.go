package pkt

import "testing"

func TestFlags(t *testing.T) {
	f := FlagSYN | FlagACK
	if !f.Has(FlagSYN) || !f.Has(FlagACK) || !f.Has(FlagSYN|FlagACK) {
		t.Fatal("Has misses set flags")
	}
	if f.Has(FlagFIN) {
		t.Fatal("Has reports unset flag")
	}
}

func TestSizeDefaultsHeader(t *testing.T) {
	p := &Packet{PayloadLen: 1460}
	if p.Size() != 1500 {
		t.Fatalf("Size = %d", p.Size())
	}
	p.HeaderLen = 60
	if p.Size() != 1520 {
		t.Fatalf("Size with header = %d", p.Size())
	}
}

func TestEnd(t *testing.T) {
	p := &Packet{Seq: 1000, PayloadLen: 500}
	if p.End() != 1500 {
		t.Fatalf("End = %d", p.End())
	}
}

func TestString(t *testing.T) {
	p := &Packet{FlowID: 3, Seq: 7, PayloadLen: 11, Flags: FlagACK}
	if p.String() == "" {
		t.Fatal("empty String")
	}
}
