// Package pkt defines the Packet type exchanged between protocol endpoints
// and network elements. It is shared by the TCP stack, the UDP-based
// low-latency protocols, the probing tools, and the queueing disciplines.
package pkt

import (
	"fmt"

	"element/internal/units"
)

// Flags is a bit set of TCP-style control flags.
type Flags uint8

// Flag bits.
const (
	FlagSYN Flags = 1 << iota
	FlagACK
	FlagFIN
	FlagRST
)

// Has reports whether all bits in f are set.
func (fl Flags) Has(f Flags) bool { return fl&f == f }

// DefaultHeaderLen is the assumed IP+TCP header overhead in bytes.
const DefaultHeaderLen = 40

// Range is a half-open byte range [Start, End) used for SACK blocks.
type Range struct{ Start, End uint64 }

// Packet is a network packet in flight or in a queue. Fields beyond the
// universal ones (sizes, flow identity, ECN bits) are interpreted by the
// protocol that created the packet: TCP uses Seq/Ack/Flags, UDP-based
// protocols and probes carry their state in Payload.
type Packet struct {
	// FlowID identifies the flow for fair-queueing and per-flow stats.
	FlowID int

	// PayloadLen is the number of application/transport payload bytes.
	PayloadLen int
	// HeaderLen is the header overhead included in the wire size.
	HeaderLen int

	// TCP fields. Seq is the sequence number of the first payload byte;
	// Ack is the cumulative acknowledgment (valid when FlagACK is set).
	Seq   uint64
	Ack   uint64
	Flags Flags
	// Wnd is the advertised receive window in bytes (on ACKs).
	Wnd int
	// Sack carries up to a few selective-acknowledgment blocks (received
	// byte ranges above Ack), like the TCP SACK option.
	Sack []Range

	// ECN bits. ECT marks an ECN-capable transport; CE is set by an AQM in
	// place of dropping when ECN is negotiated. ECE is echoed by the
	// receiver back to the sender.
	ECT bool
	CE  bool
	ECE bool

	// Gen is the retransmission generation of a TCP data segment: 0 for the
	// first transmission, incremented on every retransmission of the same
	// sequence range. Attribution tools use it to tell copies of a segment
	// apart inside queues.
	Gen int

	// SentAt is the time the packet left the sender's TCP layer (set by the
	// transport; used for ground-truth tracing and RTT sampling).
	SentAt units.Time
	// EnqueuedAt is stamped by a queueing discipline on enqueue and is the
	// basis for sojourn-time AQMs (CoDel, PIE).
	EnqueuedAt units.Time

	// Payload carries protocol-private data for non-TCP protocols
	// (probe IDs, UDP protocol headers, VR frame metadata).
	Payload any
}

// Size reports the wire size of the packet in bytes.
func (p *Packet) Size() int {
	h := p.HeaderLen
	if h == 0 {
		h = DefaultHeaderLen
	}
	return h + p.PayloadLen
}

// End reports the sequence number just past the packet's payload.
func (p *Packet) End() uint64 { return p.Seq + uint64(p.PayloadLen) }

func (p *Packet) String() string {
	return fmt.Sprintf("pkt{flow=%d seq=%d len=%d flags=%04b}", p.FlowID, p.Seq, p.PayloadLen, p.Flags)
}
