package sim

import (
	"testing"

	"element/internal/units"
)

func TestProcSleep(t *testing.T) {
	e := New(1)
	var wakeups []units.Time
	e.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(10 * units.Millisecond)
			wakeups = append(wakeups, p.Now())
		}
	})
	e.Run()
	want := []units.Time{
		units.Time(10 * units.Millisecond),
		units.Time(20 * units.Millisecond),
		units.Time(30 * units.Millisecond),
	}
	if len(wakeups) != 3 {
		t.Fatalf("wakeups = %v", wakeups)
	}
	for i := range want {
		if wakeups[i] != want[i] {
			t.Fatalf("wakeups = %v, want %v", wakeups, want)
		}
	}
}

func TestProcInterleaving(t *testing.T) {
	e := New(1)
	var order []string
	e.Spawn("a", func(p *Proc) {
		order = append(order, "a0")
		p.Sleep(5 * units.Millisecond)
		order = append(order, "a1")
		p.Sleep(10 * units.Millisecond)
		order = append(order, "a2")
	})
	e.Spawn("b", func(p *Proc) {
		order = append(order, "b0")
		p.Sleep(10 * units.Millisecond)
		order = append(order, "b1")
	})
	e.Run()
	want := []string{"a0", "b0", "a1", "b1", "a2"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestCondSignal(t *testing.T) {
	e := New(1)
	c := NewCond(e)
	var got []string
	e.Spawn("waiter", func(p *Proc) {
		c.Wait(p)
		got = append(got, "woken")
	})
	e.Schedule(50*units.Millisecond, func() { c.Signal() })
	e.Run()
	if len(got) != 1 || got[0] != "woken" {
		t.Fatalf("got = %v", got)
	}
	if e.Now() != units.Time(50*units.Millisecond) {
		t.Fatalf("woke at %v", e.Now())
	}
}

func TestCondBroadcast(t *testing.T) {
	e := New(1)
	c := NewCond(e)
	woken := 0
	for i := 0; i < 5; i++ {
		e.Spawn("w", func(p *Proc) {
			c.Wait(p)
			woken++
		})
	}
	e.Schedule(units.Millisecond, func() {
		if c.NumWaiters() != 5 {
			t.Errorf("NumWaiters = %d, want 5", c.NumWaiters())
		}
		c.Broadcast()
	})
	e.Run()
	if woken != 5 {
		t.Fatalf("woken = %d, want 5", woken)
	}
}

func TestCondWaitTimeout(t *testing.T) {
	e := New(1)
	c := NewCond(e)
	var signaled, timedOut bool
	e.Spawn("timeout", func(p *Proc) {
		ok := c.WaitTimeout(p, 10*units.Millisecond)
		timedOut = !ok
		if p.Now() != units.Time(10*units.Millisecond) {
			t.Errorf("timeout at %v, want 10ms", p.Now())
		}
	})
	e.Spawn("signaled", func(p *Proc) {
		p.Sleep(units.Millisecond) // let the first waiter enqueue first
		ok := c.WaitTimeout(p, units.Minute)
		signaled = ok
	})
	// After the first waiter times out, only the second remains.
	e.Schedule(20*units.Millisecond, func() { c.Signal() })
	e.Run()
	if !timedOut {
		t.Fatal("first waiter should have timed out")
	}
	if !signaled {
		t.Fatal("second waiter should have been signaled")
	}
	e.Shutdown()
}

// A waiter that is signaled and then sleeps must not be woken by its stale
// timeout timer.
func TestCondTimeoutNoStaleWake(t *testing.T) {
	e := New(1)
	c := NewCond(e)
	var wake units.Time
	e.Spawn("w", func(p *Proc) {
		if !c.WaitTimeout(p, 100*units.Millisecond) {
			t.Error("unexpected timeout")
		}
		p.Sleep(units.Second)
		wake = p.Now()
	})
	e.Schedule(units.Millisecond, func() { c.Signal() })
	e.Run()
	want := units.Time(units.Millisecond + units.Second)
	if wake != want {
		t.Fatalf("woke at %v, want %v", wake, want)
	}
}

func TestShutdownKillsParked(t *testing.T) {
	e := New(1)
	c := NewCond(e)
	reached := false
	e.Spawn("stuck", func(p *Proc) {
		c.Wait(p) // never signaled
		reached = true
	})
	e.RunFor(units.Second)
	e.Shutdown()
	if reached {
		t.Fatal("killed process continued past Wait")
	}
	if len(e.procs) != 0 {
		t.Fatalf("procs remaining: %d", len(e.procs))
	}
}

func TestSpawnFromProc(t *testing.T) {
	e := New(1)
	var order []string
	e.Spawn("parent", func(p *Proc) {
		order = append(order, "parent")
		e.Spawn("child", func(q *Proc) {
			order = append(order, "child")
		})
		p.Sleep(units.Millisecond)
		order = append(order, "parent-after")
	})
	e.Run()
	want := []string{"parent", "child", "parent-after"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestProcSignalWhileRunnable(t *testing.T) {
	// Signal scheduling a wake for a process that re-waits quickly must not
	// double-wake it.
	e := New(1)
	c := NewCond(e)
	count := 0
	e.Spawn("w", func(p *Proc) {
		for i := 0; i < 3; i++ {
			c.Wait(p)
			count++
		}
	})
	for i := 1; i <= 3; i++ {
		e.Schedule(units.Duration(i)*units.Millisecond, func() { c.Signal() })
	}
	e.Run()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
}
