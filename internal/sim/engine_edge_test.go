package sim

import (
	"testing"

	"element/internal/units"
)

func TestStopFromProcess(t *testing.T) {
	e := New(1)
	after := false
	e.Spawn("stopper", func(p *Proc) {
		p.Sleep(10 * units.Millisecond)
		e.Stop()
	})
	e.Schedule(20*units.Millisecond, func() { after = true })
	e.Run()
	if after {
		t.Fatal("event after Stop executed")
	}
	if e.Now() != units.Time(10*units.Millisecond) {
		t.Fatalf("clock = %v", e.Now())
	}
	e.Shutdown()
}

func TestRunUntilLeavesParkedProcsIntact(t *testing.T) {
	e := New(1)
	var wakes []units.Time
	e.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(100 * units.Millisecond)
			wakes = append(wakes, p.Now())
		}
	})
	e.RunUntil(units.Time(250 * units.Millisecond))
	if len(wakes) != 2 {
		t.Fatalf("wakes after first window = %d", len(wakes))
	}
	// Resuming the clock must continue the same process seamlessly.
	e.RunUntil(units.Time(600 * units.Millisecond))
	if len(wakes) != 5 {
		t.Fatalf("wakes after second window = %d", len(wakes))
	}
	e.Shutdown()
}

func TestTimerStopInsideOwnCallback(t *testing.T) {
	e := New(1)
	var tm *Timer
	ran := false
	tm = e.Schedule(units.Millisecond, func() {
		ran = true
		if tm.Stop() {
			t.Error("Stop inside own callback returned true")
		}
	})
	e.Run()
	if !ran {
		t.Fatal("callback did not run")
	}
}

func TestManyProcsDeterministicOrder(t *testing.T) {
	run := func() []int {
		e := New(5)
		var order []int
		for i := 0; i < 50; i++ {
			i := i
			e.Spawn("p", func(p *Proc) {
				p.Sleep(units.Duration(e.Rand().Intn(10)+1) * units.Millisecond)
				order = append(order, i)
			})
		}
		e.Run()
		return order
	}
	a, b := run(), run()
	if len(a) != 50 || len(b) != 50 {
		t.Fatal("missing wakeups")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic process order at %d", i)
		}
	}
}
