package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"element/internal/units"
)

func TestScheduleOrdering(t *testing.T) {
	e := New(1)
	var got []int
	e.Schedule(30*units.Millisecond, func() { got = append(got, 3) })
	e.Schedule(10*units.Millisecond, func() { got = append(got, 1) })
	e.Schedule(20*units.Millisecond, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events out of order: %v", got)
	}
	if e.Now() != units.Time(30*units.Millisecond) {
		t.Fatalf("clock = %v, want 30ms", e.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	e := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(units.Millisecond, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestTimerStop(t *testing.T) {
	e := New(1)
	fired := false
	tm := e.Schedule(units.Millisecond, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop returned false on pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	e.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	e := New(1)
	tm := e.Schedule(0, func() {})
	e.Run()
	if tm.Stop() {
		t.Fatal("Stop after fire returned true")
	}
}

func TestRunUntil(t *testing.T) {
	e := New(1)
	count := 0
	var tick func()
	tick = func() {
		count++
		e.Schedule(10*units.Millisecond, tick)
	}
	e.Schedule(10*units.Millisecond, tick)
	e.RunUntil(units.Time(105 * units.Millisecond))
	if count != 10 {
		t.Fatalf("count = %d, want 10", count)
	}
	if e.Now() != units.Time(105*units.Millisecond) {
		t.Fatalf("clock = %v, want 105ms", e.Now())
	}
	e.RunFor(100 * units.Millisecond)
	if count != 20 {
		t.Fatalf("count after RunFor = %d, want 20", count)
	}
	e.Shutdown()
}

func TestNestedScheduling(t *testing.T) {
	e := New(1)
	var order []string
	e.Schedule(0, func() {
		order = append(order, "a")
		e.Schedule(0, func() { order = append(order, "c") })
		order = append(order, "b")
	})
	e.Run()
	want := []string{"a", "b", "c"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestScheduleInPastClamps(t *testing.T) {
	e := New(1)
	e.Schedule(units.Second, func() {
		e.At(0, func() {
			if e.Now() != units.Time(units.Second) {
				t.Errorf("past event ran at %v", e.Now())
			}
		})
	})
	e.Run()
}

func TestStop(t *testing.T) {
	e := New(1)
	count := 0
	for i := 0; i < 10; i++ {
		e.Schedule(units.Duration(i)*units.Millisecond, func() {
			count++
			if count == 5 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
}

// Property: for any set of delays, events fire in nondecreasing time order
// and the clock matches each event's scheduled time.
func TestPropertyEventOrder(t *testing.T) {
	f := func(delaysMS []uint16) bool {
		e := New(42)
		var fireTimes []units.Time
		want := make([]units.Time, 0, len(delaysMS))
		for _, d := range delaysMS {
			at := units.Time(units.Duration(d) * units.Millisecond)
			want = append(want, at)
			e.At(at, func() { fireTimes = append(fireTimes, e.Now()) })
		}
		e.Run()
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(fireTimes) != len(want) {
			return false
		}
		for i := range want {
			if fireTimes[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Pending decreases to zero over a run and Step returns false on
// an empty queue.
func TestPropertyPendingDrains(t *testing.T) {
	f := func(n uint8) bool {
		e := New(7)
		rng := rand.New(rand.NewSource(int64(n)))
		for i := 0; i < int(n); i++ {
			e.Schedule(units.Duration(rng.Intn(1000))*units.Microsecond, func() {})
		}
		if e.Pending() != int(n) {
			return false
		}
		e.Run()
		return e.Pending() == 0 && !e.Step()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int64 {
		e := New(99)
		var samples []int64
		var tick func()
		tick = func() {
			samples = append(samples, int64(e.Rand().Intn(1000)))
			if len(samples) < 50 {
				e.Schedule(units.Duration(e.Rand().Intn(100))*units.Microsecond+1, tick)
			}
		}
		e.Schedule(0, tick)
		e.Run()
		return samples
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}
