// Package sim implements the deterministic discrete-event simulation engine
// that underpins the whole repository.
//
// The engine advances a virtual clock by executing events in (time, sequence)
// order. On top of the raw event loop it offers a coroutine-style process
// abstraction (Proc) so that application code — traffic generators, the
// ELEMENT trackers, the VR streamer — can be written in ordinary blocking
// style (Write, Read, Sleep) while still running in virtual time. Exactly one
// goroutine executes at any instant, so simulations are fully deterministic
// and race-free by construction.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"

	"element/internal/units"
)

// event is a scheduled callback.
type event struct {
	at       units.Time
	seq      uint64 // tie-breaker: FIFO among same-time events
	fn       func()
	canceled bool
	index    int // heap index, maintained by eventHeap
}

// eventHeap is a min-heap ordered by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Timer is a handle to a scheduled event; it allows cancellation.
type Timer struct{ ev *event }

// Stop cancels the timer. It is safe to call on an already-fired or
// already-stopped timer, and reports whether the call prevented the event
// from firing.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.canceled || t.ev.index == -1 {
		return false
	}
	t.ev.canceled = true
	return true
}

// Engine is a discrete-event simulator instance. It is not safe for
// concurrent use; all interaction must happen from the goroutine that calls
// Run (which includes all Proc goroutines, since only one runs at a time).
type Engine struct {
	now    units.Time
	seq    uint64
	events eventHeap
	rng    *rand.Rand

	// parked is the rendezvous channel processes use to hand control back
	// to the event loop. Exactly one process (or the loop itself) runs at a
	// time, so one shared channel suffices.
	parked chan struct{}
	procs  map[*Proc]struct{}

	running bool
	stopped bool
}

// New returns an engine whose random source is seeded with seed, making
// every run reproducible.
func New(seed int64) *Engine {
	return &Engine{
		rng:    rand.New(rand.NewSource(seed)),
		parked: make(chan struct{}),
		procs:  make(map[*Proc]struct{}),
	}
}

// Now reports the current virtual time.
func (e *Engine) Now() units.Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Schedule arranges for fn to run after delay d. Negative delays are treated
// as zero (run "immediately", after currently queued same-time events).
func (e *Engine) Schedule(d units.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return e.At(e.now.Add(d), fn)
}

// At arranges for fn to run at absolute virtual time t. Times in the past
// are clamped to now.
func (e *Engine) At(t units.Time, fn func()) *Timer {
	if t < e.now {
		t = e.now
	}
	e.seq++
	ev := &event{at: t, seq: e.seq, fn: fn}
	heap.Push(&e.events, ev)
	return &Timer{ev: ev}
}

// Step executes the next pending event, advancing the clock. It reports
// whether an event was executed.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*event)
		if ev.canceled {
			continue
		}
		e.now = ev.at
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty. Parked processes that are
// never woken again do not keep Run alive.
func (e *Engine) Run() {
	e.running = true
	defer func() { e.running = false }()
	for e.Step() {
		if e.stopped {
			return
		}
	}
}

// RunUntil executes events with timestamps <= t, then sets the clock to t.
func (e *Engine) RunUntil(t units.Time) {
	e.running = true
	defer func() { e.running = false }()
	for len(e.events) > 0 && !e.stopped {
		// Peek.
		next := e.events[0]
		if next.canceled {
			heap.Pop(&e.events)
			continue
		}
		if next.at > t {
			break
		}
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// RunFor executes events for duration d of virtual time from now.
func (e *Engine) RunFor(d units.Duration) { e.RunUntil(e.now.Add(d)) }

// Stop makes Run/RunUntil return after the current event completes. It is
// typically called from within an event or process.
func (e *Engine) Stop() { e.stopped = true }

// Shutdown terminates all parked processes so their goroutines exit. It must
// be called after Run/RunUntil have returned, from the driving goroutine.
// Experiments call this once measurements are collected.
func (e *Engine) Shutdown() {
	for p := range e.procs {
		if p.state == procParked {
			p.killed = true
			p.resume <- struct{}{}
			<-e.parked
		}
		delete(e.procs, p)
	}
}

// Pending reports the number of scheduled (non-canceled) events.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.events {
		if !ev.canceled {
			n++
		}
	}
	return n
}

func (e *Engine) String() string {
	return fmt.Sprintf("sim.Engine{now=%v, pending=%d}", e.now, len(e.events))
}
