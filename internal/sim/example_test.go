package sim_test

import (
	"fmt"

	"element/internal/sim"
	"element/internal/units"
)

// Example demonstrates the engine's two programming models: raw events and
// blocking processes.
func Example() {
	eng := sim.New(1)

	// Event style: a callback at t = 5ms.
	eng.Schedule(5*units.Millisecond, func() {
		fmt.Printf("event at %v\n", eng.Now())
	})

	// Process style: a goroutine that sleeps in virtual time.
	eng.Spawn("worker", func(p *sim.Proc) {
		p.Sleep(2 * units.Millisecond)
		fmt.Printf("worker woke at %v\n", p.Now())
		p.Sleep(10 * units.Millisecond)
		fmt.Printf("worker done at %v\n", p.Now())
	})

	eng.Run()
	// Output:
	// worker woke at 0.002000s
	// event at 0.005000s
	// worker done at 0.012000s
}
