package sim

import (
	"fmt"

	"element/internal/units"
)

// procState tracks where a process is in its lifecycle.
type procState int

const (
	procRunning procState = iota
	procParked
	procDone
)

// procKilled is the panic sentinel used by Engine.Shutdown to unwind parked
// process goroutines.
type procKilled struct{}

// Proc is a simulated process: a goroutine that runs in virtual time.
// Exactly one process goroutine executes at a time; a process runs until it
// parks (Sleep, Cond.Wait, WaitTimer) and the event loop resumes it when its
// wakeup event fires. This gives application code ordinary blocking
// semantics with fully deterministic scheduling.
type Proc struct {
	eng    *Engine
	name   string
	resume chan struct{}
	state  procState
	killed bool
}

// Spawn starts fn as a new process. The process begins executing at the
// current virtual time, after already-queued same-time events.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{eng: e, name: name, resume: make(chan struct{})}
	e.procs[p] = struct{}{}
	e.Schedule(0, func() { p.start(fn) })
	return p
}

// start launches the process goroutine and waits for it to park or finish.
// It runs in event-loop context.
func (p *Proc) start(fn func(p *Proc)) {
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(procKilled); !ok {
					// Re-panic on the process goroutine: a real bug.
					// The engine goroutine is blocked on parked, so
					// crash loudly rather than deadlock.
					panic(fmt.Sprintf("sim: process %q panicked: %v", p.name, r))
				}
			}
			p.state = procDone
			delete(p.eng.procs, p)
			p.eng.parked <- struct{}{}
		}()
		fn(p)
	}()
	<-p.eng.parked
}

// park hands control back to the event loop and blocks until resumed.
func (p *Proc) park() {
	p.state = procParked
	p.eng.parked <- struct{}{}
	<-p.resume
	p.state = procRunning
	if p.killed {
		panic(procKilled{})
	}
}

// wake schedules an event that resumes p. It is the only way to restart a
// parked process and must be called exactly once per park.
func (p *Proc) wake() {
	p.eng.Schedule(0, func() {
		if p.state != procParked {
			return // process was killed or already woken
		}
		p.resume <- struct{}{}
		<-p.eng.parked
	})
}

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Now reports the current virtual time.
func (p *Proc) Now() units.Time { return p.eng.Now() }

// Name reports the process name (useful in traces and panics).
func (p *Proc) Name() string { return p.name }

// Sleep blocks the process for d of virtual time.
func (p *Proc) Sleep(d units.Duration) {
	if d < 0 {
		d = 0
	}
	p.eng.Schedule(d, func() {
		if p.state != procParked {
			return
		}
		p.resume <- struct{}{}
		<-p.eng.parked
	})
	p.park()
}

// Cond is a condition variable for processes. Waiters park until another
// event context calls Signal or Broadcast. As with sync.Cond, waiters must
// re-check their predicate in a loop.
type Cond struct {
	eng     *Engine
	waiters []*Proc
}

// NewCond returns a condition variable bound to e.
func NewCond(e *Engine) *Cond { return &Cond{eng: e} }

// Wait parks p until the condition is signaled.
func (c *Cond) Wait(p *Proc) {
	c.waiters = append(c.waiters, p)
	p.park()
}

// WaitTimeout parks p until the condition is signaled or d elapses. It
// reports false on timeout. A signaled waiter is removed from the wait list
// by Signal/Broadcast; a timed-out waiter removes itself.
func (c *Cond) WaitTimeout(p *Proc, d units.Duration) bool {
	timedOut := false
	timer := c.eng.Schedule(d, func() {
		if p.state != procParked {
			return
		}
		// Remove p from the waiter list so a later Signal skips it.
		for i, w := range c.waiters {
			if w == p {
				c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
				break
			}
		}
		timedOut = true
		p.resume <- struct{}{}
		<-c.eng.parked
	})
	c.waiters = append(c.waiters, p)
	p.park()
	timer.Stop()
	return !timedOut
}

// Signal wakes one waiter, if any.
func (c *Cond) Signal() {
	if len(c.waiters) == 0 {
		return
	}
	p := c.waiters[0]
	c.waiters = c.waiters[1:]
	p.wake()
}

// Broadcast wakes all waiters.
func (c *Cond) Broadcast() {
	ws := c.waiters
	c.waiters = nil
	for _, p := range ws {
		p.wake()
	}
}

// NumWaiters reports how many processes are waiting on the condition.
func (c *Cond) NumWaiters() int { return len(c.waiters) }
