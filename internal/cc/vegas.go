package cc

import "element/internal/units"

// Vegas parameters (Brakmo & Peterson 1995): keep between alpha and beta
// packets queued in the network.
const (
	vegasAlpha = 2.0
	vegasBeta  = 4.0
	vegasGamma = 1.0 // slow-start exit threshold
)

// Vegas implements TCP Vegas, the delay-based algorithm the paper uses as
// its low-latency TCP reference point (§5.1, Figure 15). Vegas compares the
// expected throughput cwnd/baseRTT with the actual throughput cwnd/RTT and
// adjusts the window once per RTT to keep a small number of packets queued.
type Vegas struct {
	mss      int
	cwnd     float64
	ssthresh float64

	baseRTT    units.Duration // minimum observed RTT
	lastRTT    units.Duration
	nextUpdate units.Time // next per-RTT adjustment time
	slowStart  bool
	ssToggle   bool // Vegas doubles every *other* RTT in slow start
}

// NewVegas returns a Vegas instance.
func NewVegas(mss int) *Vegas {
	return &Vegas{mss: mss, cwnd: initialCwndSegs, ssthresh: maxSsthreshSegs, slowStart: true}
}

// Name implements Algorithm.
func (v *Vegas) Name() string { return "vegas" }

// OnAck implements Algorithm.
func (v *Vegas) OnAck(now units.Time, ackedBytes int, rtt units.Duration, inFlight int, inRecovery bool) {
	if rtt > 0 {
		if v.baseRTT == 0 || rtt < v.baseRTT {
			v.baseRTT = rtt
		}
		v.lastRTT = rtt
	}
	if v.lastRTT == 0 || v.baseRTT == 0 || inRecovery {
		return
	}
	if now < v.nextUpdate {
		return
	}
	v.nextUpdate = now.Add(v.lastRTT)

	// diff: packets occupying network queues.
	expected := v.cwnd / v.baseRTT.Seconds()
	actual := v.cwnd / v.lastRTT.Seconds()
	diff := (expected - actual) * v.baseRTT.Seconds()

	if v.slowStart {
		if diff > vegasGamma {
			v.slowStart = false
			v.ssthresh = v.cwnd
		} else {
			// Double every other RTT.
			v.ssToggle = !v.ssToggle
			if v.ssToggle {
				v.cwnd *= 2
			}
			return
		}
	}
	switch {
	case diff < vegasAlpha:
		v.cwnd++
	case diff > vegasBeta:
		v.cwnd--
	}
	if v.cwnd < 2 {
		v.cwnd = 2
	}
}

// OnLoss implements Algorithm: Vegas halves like Reno on actual loss.
func (v *Vegas) OnLoss(now units.Time) {
	v.slowStart = false
	v.cwnd = v.cwnd * 3 / 4 // Vegas's gentler reduction
	if v.cwnd < 2 {
		v.cwnd = 2
	}
	v.ssthresh = v.cwnd
}

// OnECN implements Algorithm.
func (v *Vegas) OnECN(now units.Time) { v.OnLoss(now) }

// OnRTO implements Algorithm.
func (v *Vegas) OnRTO(now units.Time) {
	v.slowStart = false
	v.cwnd = 2
	v.ssthresh = v.cwnd
}

// CwndBytes implements Algorithm.
func (v *Vegas) CwndBytes() int { return int(v.cwnd * float64(v.mss)) }

// SsthreshSegs implements Algorithm.
func (v *Vegas) SsthreshSegs() int { return int(v.ssthresh) }

// PacingRate implements Algorithm.
func (v *Vegas) PacingRate() units.Rate { return 0 }
