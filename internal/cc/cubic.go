package cc

import (
	"math"

	"element/internal/units"
)

// CUBIC constants from RFC 8312.
const (
	cubicC    = 0.4 // scaling constant (segments/s^3)
	cubicBeta = 0.7 // multiplicative decrease factor
)

// Cubic implements CUBIC congestion control (RFC 8312), Linux's default and
// the algorithm the paper's bufferbloat experiments run. Window growth
// follows W(t) = C·(t−K)³ + W_max with fast convergence and the
// TCP-friendly (Reno-emulation) region.
type Cubic struct {
	mss      int
	cwnd     float64 // segments
	ssthresh float64 // segments

	wMax       float64    // window before the last reduction
	epochStart units.Time // start of the current growth epoch (0 = unset)
	k          float64    // time (s) to regrow to wMax
	wEst       float64    // Reno-friendly window estimate
	ackCount   float64    // acked segments this epoch (for wEst)
	srtt       units.Duration
	lastCut    units.Time

	// HyStart (delay-increase detection): exit slow start when the RTT has
	// risen clearly above its floor for several consecutive samples, which
	// is what keeps real Linux Cubic from overshooting a deep queue by a
	// whole window during startup.
	hystartMinRTT units.Duration
	hystartCount  int
	noHyStart     bool
}

// HyStart parameters (Ha & Rhee 2011, as in Linux tcp_cubic).
const (
	hystartSamples  = 8
	hystartMinDelta = 4 * units.Millisecond
	hystartMaxDelta = 16 * units.Millisecond
)

// NewCubic returns a CUBIC instance.
func NewCubic(mss int) *Cubic {
	return &Cubic{mss: mss, cwnd: initialCwndSegs, ssthresh: maxSsthreshSegs}
}

// NewCubicNoHyStart returns CUBIC with HyStart disabled — pre-2011
// behaviour, kept for the ablation benchmark that quantifies how much of
// the stack's sanity depends on the delay-based slow-start exit.
func NewCubicNoHyStart(mss int) *Cubic {
	c := NewCubic(mss)
	c.noHyStart = true
	return c
}

// Name implements Algorithm.
func (c *Cubic) Name() string { return "cubic" }

// OnAck implements Algorithm.
func (c *Cubic) OnAck(now units.Time, ackedBytes int, rtt units.Duration, inFlight int, inRecovery bool) {
	if rtt > 0 {
		if c.srtt == 0 {
			c.srtt = rtt
		} else {
			c.srtt = (7*c.srtt + rtt) / 8
		}
	}
	if inRecovery {
		return // no window growth while loss recovery is in progress
	}
	segs := float64(ackedBytes) / float64(c.mss)
	if c.cwnd < c.ssthresh {
		if rtt > 0 && !c.noHyStart {
			c.hystart(rtt)
		}
		if c.cwnd < c.ssthresh { // hystart may have just exited slow start
			c.cwnd += segs
			return
		}
		return
	}

	// Congestion avoidance: cubic growth toward/past wMax.
	if c.epochStart == 0 {
		c.epochStart = now
		c.ackCount = 0
		if c.cwnd < c.wMax {
			c.k = math.Cbrt((c.wMax - c.cwnd) / cubicC)
		} else {
			c.k = 0
			c.wMax = c.cwnd
		}
		c.wEst = c.cwnd
	}
	t := now.Sub(c.epochStart).Seconds() + c.srtt.Seconds()
	target := cubicC*math.Pow(t-c.k, 3) + c.wMax

	// TCP-friendly region (RFC 8312 §4.2).
	c.ackCount += segs
	c.wEst += 3 * (1 - cubicBeta) / (1 + cubicBeta) * segs / c.cwnd
	if c.wEst > target {
		target = c.wEst
	}

	if target > c.cwnd {
		// Approach the target over one RTT, never overshooting it.
		c.cwnd += (target - c.cwnd) / c.cwnd * segs
		if c.cwnd > target {
			c.cwnd = target
		}
	} else {
		c.cwnd += segs / (100 * c.cwnd) // minimal growth when above target
	}
}

// hystart applies the delay-increase exit rule: once hystartSamples
// consecutive RTT samples exceed the observed floor by a clamped eighth of
// it, slow start ends at the current window.
func (c *Cubic) hystart(rtt units.Duration) {
	if c.hystartMinRTT == 0 || rtt < c.hystartMinRTT {
		c.hystartMinRTT = rtt
		c.hystartCount = 0
		return
	}
	delta := c.hystartMinRTT / 8
	if delta < hystartMinDelta {
		delta = hystartMinDelta
	}
	if delta > hystartMaxDelta {
		delta = hystartMaxDelta
	}
	if rtt >= c.hystartMinRTT+delta {
		c.hystartCount++
		if c.hystartCount >= hystartSamples {
			c.ssthresh = c.cwnd // leave slow start at the current window
		}
	} else {
		c.hystartCount = 0
	}
}

// OnLoss implements Algorithm: multiplicative decrease with fast
// convergence.
func (c *Cubic) OnLoss(now units.Time) {
	c.epochStart = 0
	if c.cwnd < c.wMax {
		// Fast convergence: release bandwidth faster when the available
		// capacity shrank.
		c.wMax = c.cwnd * (1 + cubicBeta) / 2
	} else {
		c.wMax = c.cwnd
	}
	c.cwnd *= cubicBeta
	if c.cwnd < 2 {
		c.cwnd = 2
	}
	c.ssthresh = c.cwnd
	c.lastCut = now
}

// OnECN implements Algorithm.
func (c *Cubic) OnECN(now units.Time) {
	guard := c.srtt
	if guard == 0 {
		guard = 10 * units.Millisecond
	}
	if now.Sub(c.lastCut) < guard {
		return
	}
	c.OnLoss(now)
}

// OnRTO implements Algorithm.
func (c *Cubic) OnRTO(now units.Time) {
	c.OnLoss(now)
	c.cwnd = 1
}

// CwndBytes implements Algorithm.
func (c *Cubic) CwndBytes() int { return int(c.cwnd * float64(c.mss)) }

// SsthreshSegs implements Algorithm.
func (c *Cubic) SsthreshSegs() int { return int(c.ssthresh) }

// PacingRate implements Algorithm (CUBIC does not pace here).
func (c *Cubic) PacingRate() units.Rate { return 0 }
