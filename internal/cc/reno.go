package cc

import "element/internal/units"

// Reno implements TCP NewReno congestion control (RFC 5681): slow start,
// congestion avoidance with one-MSS-per-RTT growth, and multiplicative
// decrease by half on loss.
type Reno struct {
	mss      int
	cwnd     float64 // in segments
	ssthresh float64 // in segments
	// ackedFrac accumulates partial congestion-avoidance credit.
	lastCut units.Time
}

// NewReno returns a NewReno instance.
func NewReno(mss int) *Reno {
	return &Reno{mss: mss, cwnd: initialCwndSegs, ssthresh: maxSsthreshSegs}
}

// Name implements Algorithm.
func (r *Reno) Name() string { return "reno" }

// OnAck implements Algorithm.
func (r *Reno) OnAck(now units.Time, ackedBytes int, rtt units.Duration, inFlight int, inRecovery bool) {
	if inRecovery {
		return // no window growth while loss recovery is in progress
	}
	segs := float64(ackedBytes) / float64(r.mss)
	if r.cwnd < r.ssthresh {
		r.cwnd += segs // slow start: exponential growth
		if r.cwnd > r.ssthresh {
			r.cwnd = r.ssthresh
		}
		return
	}
	r.cwnd += segs / r.cwnd // congestion avoidance: ~1 MSS per RTT
}

// OnLoss implements Algorithm.
func (r *Reno) OnLoss(now units.Time) {
	r.ssthresh = r.cwnd / 2
	if r.ssthresh < 2 {
		r.ssthresh = 2
	}
	r.cwnd = r.ssthresh
	r.lastCut = now
}

// OnECN implements Algorithm: like loss, at most once per ~RTT (we use the
// time since the last cut as the guard).
func (r *Reno) OnECN(now units.Time) {
	if now.Sub(r.lastCut) < 10*units.Millisecond {
		return
	}
	r.OnLoss(now)
}

// OnRTO implements Algorithm.
func (r *Reno) OnRTO(now units.Time) {
	r.ssthresh = r.cwnd / 2
	if r.ssthresh < 2 {
		r.ssthresh = 2
	}
	r.cwnd = 1
	r.lastCut = now
}

// CwndBytes implements Algorithm.
func (r *Reno) CwndBytes() int { return int(r.cwnd * float64(r.mss)) }

// SsthreshSegs implements Algorithm.
func (r *Reno) SsthreshSegs() int { return int(r.ssthresh) }

// PacingRate implements Algorithm (Reno does not pace).
func (r *Reno) PacingRate() units.Rate { return 0 }
