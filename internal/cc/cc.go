// Package cc implements the congestion-control algorithms the paper
// evaluates: NewReno, CUBIC (the Linux default, RFC 8312), Vegas
// (delay-based), and a simplified BBR (model-based, with pacing). All run
// behind the Algorithm interface consumed by the TCP sender in
// internal/tcp.
package cc

import (
	"fmt"
	"math/rand"

	"element/internal/units"
)

// Algorithm is a congestion-control state machine for one connection.
// The TCP sender invokes the On* callbacks and consults CwndBytes (and
// PacingRate, if nonzero) when deciding whether to transmit.
type Algorithm interface {
	// Name identifies the algorithm ("cubic", "vegas", ...).
	Name() string
	// OnAck is invoked for every ACK that advances snd_una. rttSample is
	// zero when the ACK did not yield a valid RTT measurement (e.g. a
	// retransmitted segment). inFlight is bytes outstanding after the ACK.
	OnAck(now units.Time, ackedBytes int, rttSample units.Duration, inFlight int, inRecovery bool)
	// OnLoss is invoked once per loss event (fast retransmit entered).
	OnLoss(now units.Time)
	// OnECN is invoked when the receiver echoes a congestion mark; loss-
	// based algorithms treat it as a (at most once per RTT) loss event.
	OnECN(now units.Time)
	// OnRTO is invoked on a retransmission timeout.
	OnRTO(now units.Time)
	// CwndBytes reports the current congestion window in bytes.
	CwndBytes() int
	// SsthreshSegs reports the slow-start threshold in segments, for
	// TCP_INFO reporting. Algorithms without one report a large value.
	SsthreshSegs() int
	// PacingRate reports the pacing rate in bits/s; zero means the sender
	// is purely window-limited (no pacing).
	PacingRate() units.Rate
}

// Kind names an algorithm for configuration.
type Kind string

// Supported algorithms.
const (
	KindReno  Kind = "reno"
	KindCubic Kind = "cubic"
	KindVegas Kind = "vegas"
	KindBBR   Kind = "bbr"
)

// New constructs an algorithm by kind with the given MSS.
func New(kind Kind, mss int, rng *rand.Rand) (Algorithm, error) {
	switch kind {
	case KindReno:
		return NewReno(mss), nil
	case KindCubic, "":
		return NewCubic(mss), nil
	case KindVegas:
		return NewVegas(mss), nil
	case KindBBR:
		return NewBBR(mss), nil
	default:
		return nil, fmt.Errorf("cc: unknown algorithm %q", kind)
	}
}

// MustNew is New for static configuration; it panics on unknown kinds.
func MustNew(kind Kind, mss int, rng *rand.Rand) Algorithm {
	a, err := New(kind, mss, rng)
	if err != nil {
		panic(err)
	}
	return a
}

// initialCwndSegs is the standard initial window (RFC 6928).
const initialCwndSegs = 10

// maxSsthreshSegs stands in for "infinity" in TCP_INFO reports.
const maxSsthreshSegs = 1 << 20
