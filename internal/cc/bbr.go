package cc

import (
	"element/internal/units"
)

// BBR parameters (Cardwell et al. 2016; simplified v1).
const (
	bbrHighGain      = 2.885 // 2/ln(2): startup pacing/cwnd gain
	bbrDrainGain     = 1 / bbrHighGain
	bbrCwndGain      = 2.0
	bbrBtlBwWindow   = 10                      // max-filter window, in RTTs (packet-timed rounds)
	bbrRTpropWindow  = 10 * units.Second       // min-filter window
	bbrProbeRTTEvery = 10 * units.Second       // how often to enter PROBE_RTT
	bbrProbeRTTTime  = 200 * units.Millisecond // PROBE_RTT dwell
	bbrMinCwndSegs   = 4
)

// bbrProbeGains is the PROBE_BW pacing-gain cycle.
var bbrProbeGains = [8]float64{1.25, 0.75, 1, 1, 1, 1, 1, 1}

type bbrState int

const (
	bbrStartup bbrState = iota
	bbrDrain
	bbrProbeBW
	bbrProbeRTT
)

// maxFilter is a windowed max filter over integer round counts.
type maxFilter struct {
	samples []struct {
		round int
		v     units.Rate
	}
	window int
}

func (f *maxFilter) update(round int, v units.Rate) {
	// Evict expired and dominated samples.
	keep := f.samples[:0]
	for _, s := range f.samples {
		if s.round > round-f.window && s.v > v {
			keep = append(keep, s)
		}
	}
	f.samples = append(keep, struct {
		round int
		v     units.Rate
	}{round, v})
}

func (f *maxFilter) get() units.Rate {
	var best units.Rate
	for _, s := range f.samples {
		if s.v > best {
			best = s.v
		}
	}
	return best
}

// BBR is a simplified BBR v1: it estimates the bottleneck bandwidth (max
// filter over delivery-rate samples) and the round-trip propagation time
// (min filter), paces at gain×BtlBw and caps inflight at cwnd_gain×BDP.
// Packet loss does not reduce the window (the property Figure 15 of the
// paper probes); only RTO resets it.
//
// The paper notes (footnote 5) that its BBR results come from Linux
// 4.12.10's implementation, which still exhibits large *sender-side* delay
// because the send buffer auto-tuning keeps the socket buffer at ~2 cwnd
// regardless of the pacing behaviour. That interaction is reproduced by
// internal/sockbuf, not here.
type BBR struct {
	mss int

	state     bbrState
	btlBw     maxFilter
	rtProp    units.Duration
	rtPropAt  units.Time
	round     int
	roundEnds uint64 // delivered-bytes mark that ends the current round
	delivered uint64

	pacingGain   float64
	cwndGain     float64
	cycleIndex   int
	cycleStart   units.Time
	probeRTTDone units.Time
	probeRTTMin  units.Duration
	fullBw       units.Rate
	fullBwCount  int

	cwnd int // bytes
}

// NewBBR returns a simplified BBR instance.
func NewBBR(mss int) *BBR {
	return &BBR{
		mss:        mss,
		state:      bbrStartup,
		btlBw:      maxFilter{window: bbrBtlBwWindow},
		pacingGain: bbrHighGain,
		cwndGain:   bbrHighGain,
		cwnd:       initialCwndSegs * mss,
	}
}

// Name implements Algorithm.
func (b *BBR) Name() string { return "bbr" }

// OnAck implements Algorithm. It feeds the bandwidth and RTT models and
// runs the state machine.
func (b *BBR) OnAck(now units.Time, ackedBytes int, rtt units.Duration, inFlight int, inRecovery bool) {
	b.delivered += uint64(ackedBytes)
	// Round accounting: one round per cwnd of delivered data.
	if b.delivered >= b.roundEnds {
		b.round++
		b.roundEnds = b.delivered + uint64(b.cwnd)
	}
	// Delivery-rate sample: acked bytes per RTT is a serviceable proxy at
	// this abstraction level (we have no per-packet delivered timestamps).
	if rtt > 0 {
		rate := units.Rate(float64(ackedBytes+inFlight) * 8 / rtt.Seconds())
		b.btlBw.update(b.round, rate)
		// RTprop only improves here; expiry of the min-filter window is
		// handled by entering PROBE_RTT, which refreshes the estimate.
		if b.rtProp == 0 || rtt < b.rtProp {
			b.rtProp = rtt
			b.rtPropAt = now
		}
		if b.state == bbrProbeRTT && (b.probeRTTMin == 0 || rtt < b.probeRTTMin) {
			b.probeRTTMin = rtt
		}
	}

	switch b.state {
	case bbrStartup:
		b.checkFullPipe()
		if b.fullBwCount >= 3 {
			b.state = bbrDrain
			b.pacingGain = bbrDrainGain
			b.cwndGain = bbrHighGain
		}
	case bbrDrain:
		if inFlight <= b.bdpBytes(1.0) {
			b.enterProbeBW(now)
		}
	case bbrProbeBW:
		// Advance the gain cycle once per RTprop.
		if b.rtProp > 0 && now.Sub(b.cycleStart) > b.rtProp {
			b.cycleIndex = (b.cycleIndex + 1) % len(bbrProbeGains)
			b.cycleStart = now
			b.pacingGain = bbrProbeGains[b.cycleIndex]
		}
		// Periodically revisit RTprop.
		if now.Sub(b.rtPropAt) > units.Duration(bbrProbeRTTEvery) {
			b.state = bbrProbeRTT
			b.probeRTTDone = now.Add(bbrProbeRTTTime)
			b.probeRTTMin = 0
		}
	case bbrProbeRTT:
		if now >= b.probeRTTDone {
			if b.probeRTTMin > 0 {
				b.rtProp = b.probeRTTMin
			}
			b.rtPropAt = now // refreshed
			b.enterProbeBW(now)
		}
	}
	b.updateCwnd()
}

func (b *BBR) enterProbeBW(now units.Time) {
	b.state = bbrProbeBW
	b.cwndGain = bbrCwndGain
	b.cycleIndex = 0
	b.cycleStart = now
	b.pacingGain = bbrProbeGains[b.cycleIndex]
}

// checkFullPipe detects the end of startup: bandwidth stopped growing ≥25%
// for three rounds.
func (b *BBR) checkFullPipe() {
	bw := b.btlBw.get()
	if bw >= units.Rate(float64(b.fullBw)*1.25) {
		b.fullBw = bw
		b.fullBwCount = 0
		return
	}
	b.fullBwCount++
}

func (b *BBR) bdpBytes(gain float64) int {
	bw := b.btlBw.get()
	if bw == 0 || b.rtProp == 0 {
		return initialCwndSegs * b.mss
	}
	return int(gain * bw.BytesPerSecond() * b.rtProp.Seconds())
}

func (b *BBR) updateCwnd() {
	if b.state == bbrProbeRTT {
		b.cwnd = bbrMinCwndSegs * b.mss
		return
	}
	w := b.bdpBytes(b.cwndGain)
	if w < bbrMinCwndSegs*b.mss {
		w = bbrMinCwndSegs * b.mss
	}
	b.cwnd = w
}

// OnLoss implements Algorithm: BBR v1 does not reduce its window on loss.
func (b *BBR) OnLoss(now units.Time) {}

// OnECN implements Algorithm: BBR v1 ignores ECN marks.
func (b *BBR) OnECN(now units.Time) {}

// OnRTO implements Algorithm: conservative reset.
func (b *BBR) OnRTO(now units.Time) {
	b.cwnd = bbrMinCwndSegs * b.mss
}

// CwndBytes implements Algorithm.
func (b *BBR) CwndBytes() int { return b.cwnd }

// SsthreshSegs implements Algorithm.
func (b *BBR) SsthreshSegs() int { return maxSsthreshSegs }

// PacingRate implements Algorithm.
func (b *BBR) PacingRate() units.Rate {
	bw := b.btlBw.get()
	if bw == 0 {
		return 0 // no model yet: window-limited slow start
	}
	return units.Rate(b.pacingGain * float64(bw))
}

// State exposes the internal state for tests.
func (b *BBR) State() int { return int(b.state) }
