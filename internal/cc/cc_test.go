package cc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"element/internal/units"
)

const mss = 1460

func TestFactory(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, k := range []Kind{KindReno, KindCubic, KindVegas, KindBBR} {
		a, err := New(k, mss, rng)
		if err != nil {
			t.Fatalf("New(%q): %v", k, err)
		}
		if a.Name() != string(k) {
			t.Fatalf("Name = %q, want %q", a.Name(), k)
		}
		if a.CwndBytes() < 2*mss {
			t.Fatalf("%s initial cwnd %d too small", k, a.CwndBytes())
		}
	}
	if _, err := New("tahoe", mss, rng); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestRenoSlowStartDoubles(t *testing.T) {
	r := NewReno(mss)
	start := r.CwndBytes()
	// Ack a full window: slow start should double it.
	r.OnAck(0, start, 50*units.Millisecond, start, false)
	if got := r.CwndBytes(); got < 2*start-mss || got > 2*start+mss {
		t.Fatalf("cwnd after full-window ack = %d, want ≈ %d", got, 2*start)
	}
}

func TestRenoCongestionAvoidanceLinear(t *testing.T) {
	r := NewReno(mss)
	r.ssthresh = 10 // force CA at cwnd=10
	r.cwnd = 10
	// One full window of acks ≈ +1 MSS.
	for i := 0; i < 10; i++ {
		r.OnAck(0, mss, 50*units.Millisecond, 10*mss, false)
	}
	if got := r.cwnd; got < 10.9 || got > 11.2 {
		t.Fatalf("cwnd after one RTT of CA = %v, want ≈ 11", got)
	}
}

func TestRenoLossHalves(t *testing.T) {
	r := NewReno(mss)
	r.cwnd = 100
	r.OnLoss(units.Time(units.Second))
	if r.cwnd != 50 {
		t.Fatalf("cwnd after loss = %v, want 50", r.cwnd)
	}
	if r.SsthreshSegs() != 50 {
		t.Fatalf("ssthresh = %d, want 50", r.SsthreshSegs())
	}
	r.OnRTO(units.Time(2 * units.Second))
	if r.cwnd != 1 {
		t.Fatalf("cwnd after RTO = %v, want 1", r.cwnd)
	}
}

func TestCubicDecreaseFactor(t *testing.T) {
	c := NewCubic(mss)
	c.ssthresh = 50
	c.cwnd = 100
	c.OnLoss(units.Time(units.Second))
	if got := c.cwnd; got < 69 || got > 71 {
		t.Fatalf("cwnd after loss = %v, want ≈ 70 (β=0.7)", got)
	}
}

func TestCubicRegrowsTowardWmax(t *testing.T) {
	c := NewCubic(mss)
	c.srtt = 50 * units.Millisecond
	c.ssthresh = 2
	c.cwnd = 100
	now := units.Time(units.Second)
	c.OnLoss(now)
	floor := c.cwnd
	// Feed acks for 5 simulated seconds; CUBIC must regrow to ≈ wMax (100)
	// and then keep probing past it.
	for i := 0; i < 100; i++ {
		now = now.Add(50 * units.Millisecond)
		for j := 0; j < int(c.cwnd); j++ {
			c.OnAck(now, mss, 50*units.Millisecond, int(c.cwnd)*mss, false)
		}
	}
	if c.cwnd <= floor {
		t.Fatalf("cwnd did not grow after loss: %v", c.cwnd)
	}
	if c.cwnd < 95 {
		t.Fatalf("cwnd after 5s = %v, want to regrow toward 100", c.cwnd)
	}
}

func TestCubicFastConvergence(t *testing.T) {
	c := NewCubic(mss)
	c.cwnd = 100
	c.OnLoss(0)
	wMaxFirst := c.wMax // 100
	c.cwnd = 80         // lost again below previous wMax
	c.OnLoss(units.Time(units.Second))
	if c.wMax >= wMaxFirst {
		t.Fatalf("fast convergence did not shrink wMax: %v -> %v", wMaxFirst, c.wMax)
	}
	if got, want := c.wMax, 80*(1+cubicBeta)/2; got != want {
		t.Fatalf("wMax = %v, want %v", got, want)
	}
}

func TestVegasHoldsSmallQueue(t *testing.T) {
	v := NewVegas(mss)
	base := 50 * units.Millisecond
	now := units.Time(0)
	// Phase 1: RTT at baseline — Vegas should grow (slow start then linear).
	// Kept short: with a perfectly flat RTT feed, slow start doubles every
	// other RTT without the queueing signal that would normally stop it.
	for i := 0; i < 20; i++ {
		now = now.Add(base)
		v.OnAck(now, mss, base, v.CwndBytes(), false)
	}
	grown := v.cwnd
	if grown <= initialCwndSegs {
		t.Fatalf("Vegas did not grow at baseline: %v", grown)
	}
	// Phase 2: queueing delay appears (RTT 3x base) — Vegas must back off.
	for i := 0; i < 200; i++ {
		now = now.Add(3 * base)
		v.OnAck(now, mss, 3*base, v.CwndBytes(), false)
	}
	if v.cwnd >= grown {
		t.Fatalf("Vegas did not decrease under queueing: %v -> %v", grown, v.cwnd)
	}
}

func TestVegasPerRTTUpdateOnly(t *testing.T) {
	v := NewVegas(mss)
	v.slowStart = false
	v.cwnd = 10
	v.baseRTT = 50 * units.Millisecond
	v.lastRTT = 50 * units.Millisecond
	v.nextUpdate = units.Time(50 * units.Millisecond)
	// Many acks within a single RTT must apply at most one adjustment.
	now := units.Time(60 * units.Millisecond)
	for i := 0; i < 50; i++ {
		v.OnAck(now, mss, 50*units.Millisecond, 10*mss, false)
	}
	if v.cwnd > 11 {
		t.Fatalf("Vegas adjusted more than once per RTT: cwnd=%v", v.cwnd)
	}
}

func TestBBRStartupExitsAndModelsBandwidth(t *testing.T) {
	b := NewBBR(mss)
	now := units.Time(0)
	rtt := 50 * units.Millisecond
	// Feed a steady 10 Mbps delivery: inFlight+acked chosen to represent
	// BDP at 10 Mbps, 50 ms = 62500 bytes.
	for i := 0; i < 400; i++ {
		now = now.Add(5 * units.Millisecond)
		b.OnAck(now, 6250, rtt, 62500-6250, false)
	}
	if b.State() == int(bbrStartup) {
		t.Fatal("BBR never exited startup under flat bandwidth")
	}
	bw := b.btlBw.get()
	if bw < 8*units.Mbps || bw > 13*units.Mbps {
		t.Fatalf("BtlBw estimate %v, want ≈ 10Mbps", bw)
	}
	if b.PacingRate() == 0 {
		t.Fatal("BBR reports no pacing rate")
	}
}

func TestBBRLossDoesNotReduceCwnd(t *testing.T) {
	b := NewBBR(mss)
	now := units.Time(0)
	for i := 0; i < 100; i++ {
		now = now.Add(5 * units.Millisecond)
		b.OnAck(now, 6250, 50*units.Millisecond, 56250, false)
	}
	before := b.CwndBytes()
	b.OnLoss(now)
	if b.CwndBytes() != before {
		t.Fatalf("BBR cwnd changed on loss: %d -> %d", before, b.CwndBytes())
	}
	b.OnRTO(now)
	if b.CwndBytes() >= before {
		t.Fatal("BBR cwnd did not reset on RTO")
	}
}

func TestBBRProbeRTTReducesCwnd(t *testing.T) {
	b := NewBBR(mss)
	now := units.Time(0)
	rtt := 50 * units.Millisecond
	for now < units.Time(12*units.Second) {
		now = now.Add(5 * units.Millisecond)
		b.OnAck(now, 6250, rtt, 56250, false)
	}
	// Somewhere in the 12s the algorithm must have visited PROBE_RTT; we
	// can't observe history directly, so re-run and sample states.
	b2 := NewBBR(mss)
	now = 0
	sawProbeRTT := false
	for now < units.Time(12*units.Second) {
		now = now.Add(5 * units.Millisecond)
		b2.OnAck(now, 6250, rtt, 56250, false)
		if b2.State() == int(bbrProbeRTT) {
			sawProbeRTT = true
			if b2.CwndBytes() > bbrMinCwndSegs*mss {
				t.Fatalf("PROBE_RTT cwnd = %d, want ≤ %d", b2.CwndBytes(), bbrMinCwndSegs*mss)
			}
		}
	}
	if !sawProbeRTT {
		t.Fatal("BBR never entered PROBE_RTT in 12s")
	}
}

func TestMaxFilterWindowEviction(t *testing.T) {
	f := maxFilter{window: 3}
	f.update(1, 100)
	f.update(2, 50)
	if f.get() != 100 {
		t.Fatalf("get = %v", f.get())
	}
	f.update(5, 30) // round 5: the 100 at round 1 has expired
	if f.get() != 30 {
		t.Fatalf("get after eviction = %v, want 30", f.get())
	}
}

// Property: no algorithm ever reports a non-positive cwnd, whatever the
// event sequence.
func TestPropertyCwndPositive(t *testing.T) {
	f := func(events []uint8) bool {
		algs := []Algorithm{NewReno(mss), NewCubic(mss), NewVegas(mss), NewBBR(mss)}
		now := units.Time(0)
		for _, ev := range events {
			now = now.Add(units.Duration(ev%50+1) * units.Millisecond)
			for _, a := range algs {
				switch ev % 5 {
				case 0, 1:
					a.OnAck(now, mss, units.Duration(ev%100+1)*units.Millisecond, 10*mss, false)
				case 2:
					a.OnLoss(now)
				case 3:
					a.OnECN(now)
				case 4:
					a.OnRTO(now)
				}
				if a.CwndBytes() < mss {
					return false
				}
				if a.PacingRate() < 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
