// Package benchgate is the benchmark-regression harness: it parses
// `go test -bench` output into a machine-readable snapshot and compares
// a fresh run against a committed baseline with per-metric noise
// tolerances, so a performance regression fails `make bench-gate` the
// same way a broken test fails `make check`.
//
// The two metrics are held to very different standards. Allocations per
// op are a property of the code, not the machine — the same binary
// performs the same allocations wherever it runs — so the gate is tight:
// a path the baseline records as allocation-free must stay
// allocation-free. Nanoseconds per op depend on the host, its load, and
// the CPU the baseline was taken on, so the gate only catches order-of-
// magnitude blowups by default; the committed baseline records GOOS,
// GOARCH and the Go version so a cross-machine comparison is at least
// visibly cross-machine.
package benchgate

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line from `go test -bench`.
type Result struct {
	Pkg        string  `json:"pkg"`
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp/AllocsPerOp are present only when the benchmark
	// reports allocations (-benchmem reports them for every benchmark).
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// Snapshot is one whole benchmark run: the BENCH_*.json document.
type Snapshot struct {
	Date       string   `json:"date"`
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	Benchtime  string   `json:"benchtime"`
	Benchmarks []Result `json:"benchmarks"`
}

// Load reads a snapshot from a JSON file (typically the committed
// baseline).
func Load(path string) (*Snapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &s, nil
}

// Write serializes the snapshot as indented JSON.
func (s *Snapshot) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ParseGoBench walks `go test -bench` text output. Benchmark result
// lines look like
//
//	BenchmarkFig2-8   1   123456789 ns/op   4096 B/op   12 allocs/op
//
// and each package's results are preceded by a "pkg: <import path>"
// context line (or followed by an "ok <import path> ..." summary, which
// is used as a fallback when no pkg line appeared).
func ParseGoBench(r io.Reader) ([]Result, error) {
	var (
		results []Result
		pkg     string
		pending int // results[pending:] still need a package name
	)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg: "))
			for i := pending; i < len(results); i++ {
				results[i].Pkg = pkg
			}
		case strings.HasPrefix(line, "ok ") || strings.HasPrefix(line, "ok\t"):
			// "ok  element/internal/exp  12.3s" closes the package:
			// name any still-unlabelled results (covers GOFLAGS
			// configurations that omit the pkg: header).
			fields := strings.Fields(line)
			if len(fields) >= 2 {
				for i := pending; i < len(results); i++ {
					if results[i].Pkg == "" {
						results[i].Pkg = fields[1]
					}
				}
			}
			pending = len(results)
			pkg = ""
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseLine(line); ok {
				r.Pkg = pkg
				results = append(results, r)
			}
		}
	}
	// A scanner error (e.g. a line beyond the 1 MiB buffer) silently
	// truncates the walk; surface it instead of snapshotting a subset.
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// parseLine decodes one benchmark result line: the name, the iteration
// count, then (value, unit) pairs.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			val := v
			r.BytesPerOp = &val
		case "allocs/op":
			val := v
			r.AllocsPerOp = &val
		default:
			if r.Extra == nil {
				r.Extra = make(map[string]float64)
			}
			r.Extra[unit] = v
		}
	}
	return r, true
}
