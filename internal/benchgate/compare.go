package benchgate

import "fmt"

// Tolerance is the gate's noise budget per metric.
type Tolerance struct {
	// NsFactor is the multiplicative slack on ns/op: the current run may
	// be up to NsFactor times the baseline before it counts as a
	// regression (0 = DefaultNsFactor). Wall time is machine- and
	// load-dependent, so the default only catches blowups no plausible
	// host difference explains.
	NsFactor float64
	// AllocFrac is the fractional slack on allocs/op (0 = DefaultAllocFrac).
	// Allocation counts are machine-independent, so the budget is small —
	// and a baseline of zero allocs/op admits zero, exactly: the
	// allocation-free hot paths are the regression this gate exists to
	// protect.
	AllocFrac float64
	// AllocSlack is an additional absolute allocs/op allowance on top of
	// AllocFrac (default 0; it is never applied to zero-alloc baselines).
	AllocSlack float64
}

// Default tolerances.
const (
	DefaultNsFactor  = 4.0
	DefaultAllocFrac = 0.25
)

func (t Tolerance) normalize() Tolerance {
	if t.NsFactor <= 0 {
		t.NsFactor = DefaultNsFactor
	}
	if t.AllocFrac <= 0 {
		t.AllocFrac = DefaultAllocFrac
	}
	return t
}

// Regression is one gate violation.
type Regression struct {
	Pkg    string
	Name   string
	Metric string // "ns/op", "allocs/op", or "missing"
	// Baseline/Current/Limit are the committed value, the fresh value,
	// and the largest fresh value the tolerance would have admitted.
	Baseline float64
	Current  float64
	Limit    float64
}

func (r Regression) String() string {
	if r.Metric == "missing" {
		return fmt.Sprintf("%s %s: in baseline but not in this run", r.Pkg, r.Name)
	}
	return fmt.Sprintf("%s %s: %s %.6g exceeds limit %.6g (baseline %.6g)",
		r.Pkg, r.Name, r.Metric, r.Current, r.Limit, r.Baseline)
}

// Compare gates current against baseline and returns every violation,
// sorted baseline-order. Benchmarks are matched by (pkg, name); a
// benchmark the baseline records but the current run lacks is itself a
// regression (a silently deleted benchmark would otherwise retire its
// own gate), while benchmarks new in the current run pass freely — they
// enter the gate when the baseline is next regenerated.
func Compare(baseline, current *Snapshot, tol Tolerance) []Regression {
	tol = tol.normalize()
	cur := make(map[string]Result, len(current.Benchmarks))
	for _, r := range current.Benchmarks {
		cur[r.Pkg+" "+r.Name] = r
	}
	var regs []Regression
	for _, base := range baseline.Benchmarks {
		now, ok := cur[base.Pkg+" "+base.Name]
		if !ok {
			regs = append(regs, Regression{Pkg: base.Pkg, Name: base.Name, Metric: "missing"})
			continue
		}
		if base.NsPerOp > 0 {
			limit := base.NsPerOp * tol.NsFactor
			if now.NsPerOp > limit {
				regs = append(regs, Regression{
					Pkg: base.Pkg, Name: base.Name, Metric: "ns/op",
					Baseline: base.NsPerOp, Current: now.NsPerOp, Limit: limit,
				})
			}
		}
		if base.AllocsPerOp != nil && now.AllocsPerOp != nil {
			limit := *base.AllocsPerOp * (1 + tol.AllocFrac)
			if *base.AllocsPerOp > 0 {
				limit += tol.AllocSlack
			}
			if *now.AllocsPerOp > limit {
				regs = append(regs, Regression{
					Pkg: base.Pkg, Name: base.Name, Metric: "allocs/op",
					Baseline: *base.AllocsPerOp, Current: *now.AllocsPerOp, Limit: limit,
				})
			}
		}
	}
	return regs
}
