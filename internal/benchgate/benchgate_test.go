package benchgate

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: element/internal/core
cpu: Intel(R) Xeon(R) CPU
BenchmarkRingMatch/impl=ring-8         	 2434202	       488.6 ns/op	       0 B/op	       0 allocs/op
BenchmarkRingMatch/impl=slice-8        	 1000000	      1022 ns/op	       0 B/op	       0 allocs/op
ok  	element/internal/core	3.861s
BenchmarkFleetSharded/shards=4-8       	       3	  39390522 ns/op	11675808 B/op	  195642 allocs/op
ok  	element/internal/fleet	0.478s
`

func parseSample(t *testing.T) *Snapshot {
	t.Helper()
	results, err := ParseGoBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	return &Snapshot{Benchtime: "1x", Benchmarks: results}
}

func TestParseGoBench(t *testing.T) {
	snap := parseSample(t)
	if len(snap.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(snap.Benchmarks))
	}
	ring := snap.Benchmarks[0]
	if ring.Pkg != "element/internal/core" || ring.Name != "BenchmarkRingMatch/impl=ring-8" {
		t.Fatalf("first benchmark misparsed: %+v", ring)
	}
	if ring.NsPerOp != 488.6 || ring.AllocsPerOp == nil || *ring.AllocsPerOp != 0 {
		t.Fatalf("ring metrics misparsed: %+v", ring)
	}
	// The fleet line has no preceding pkg: header — the trailing "ok"
	// summary must name it.
	fl := snap.Benchmarks[2]
	if fl.Pkg != "element/internal/fleet" {
		t.Fatalf("fallback package naming failed: %+v", fl)
	}
	if fl.Iterations != 3 || *fl.AllocsPerOp != 195642 {
		t.Fatalf("fleet metrics misparsed: %+v", fl)
	}
}

func TestCompareAdmitsNoise(t *testing.T) {
	base := parseSample(t)
	cur := parseSample(t)
	// Within-tolerance drift: 2x ns (limit 4x), +10% allocs (limit +25%).
	cur.Benchmarks[0].NsPerOp *= 2
	*cur.Benchmarks[2].AllocsPerOp *= 1.10
	if regs := Compare(base, cur, Tolerance{}); len(regs) != 0 {
		t.Fatalf("in-tolerance run flagged: %v", regs)
	}
}

// TestCompareFlagsSyntheticRegressions injects each regression class the
// gate exists to catch and checks it fails: a new allocation on a
// zero-alloc path, an alloc-count blowup, an order-of-magnitude ns/op
// slowdown, and a deleted benchmark.
func TestCompareFlagsSyntheticRegressions(t *testing.T) {
	base := parseSample(t)

	t.Run("alloc on zero-alloc path", func(t *testing.T) {
		cur := parseSample(t)
		one := 1.0
		cur.Benchmarks[0].AllocsPerOp = &one
		regs := Compare(base, cur, Tolerance{})
		if len(regs) != 1 || regs[0].Metric != "allocs/op" || regs[0].Limit != 0 {
			t.Fatalf("0→1 allocs/op not gated exactly: %v", regs)
		}
	})

	t.Run("alloc blowup", func(t *testing.T) {
		cur := parseSample(t)
		*cur.Benchmarks[2].AllocsPerOp *= 1.5
		regs := Compare(base, cur, Tolerance{})
		if len(regs) != 1 || regs[0].Metric != "allocs/op" {
			t.Fatalf("+50%% allocs/op not gated: %v", regs)
		}
	})

	t.Run("ns blowup", func(t *testing.T) {
		cur := parseSample(t)
		cur.Benchmarks[1].NsPerOp *= 10
		regs := Compare(base, cur, Tolerance{})
		if len(regs) != 1 || regs[0].Metric != "ns/op" {
			t.Fatalf("10x ns/op not gated: %v", regs)
		}
	})

	t.Run("deleted benchmark", func(t *testing.T) {
		cur := parseSample(t)
		cur.Benchmarks = cur.Benchmarks[:2]
		regs := Compare(base, cur, Tolerance{})
		if len(regs) != 1 || regs[0].Metric != "missing" {
			t.Fatalf("deleted benchmark not gated: %v", regs)
		}
	})
}

func TestCompareIgnoresNewBenchmarks(t *testing.T) {
	base := parseSample(t)
	cur := parseSample(t)
	cur.Benchmarks = append(cur.Benchmarks, Result{
		Pkg: "element/internal/new", Name: "BenchmarkBrandNew-8", NsPerOp: 1e12,
	})
	if regs := Compare(base, cur, Tolerance{}); len(regs) != 0 {
		t.Fatalf("benchmark absent from baseline flagged: %v", regs)
	}
}
