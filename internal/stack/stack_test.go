package stack

import (
	"testing"

	"element/internal/aqm"
	"element/internal/cc"
	"element/internal/netem"
	"element/internal/sim"
	"element/internal/units"
)

// testbed builds a 10 Mbps / 50 ms RTT path with a FIFO bottleneck.
func testbed(seed int64, rate units.Rate, rtt units.Duration, disc aqm.Discipline) (*sim.Engine, *Net) {
	eng := sim.New(seed)
	path := netem.NewPath(eng, netem.PathConfig{
		Forward: netem.LinkConfig{Rate: rate, Delay: rtt / 2, Discipline: disc},
		Reverse: netem.LinkConfig{Rate: rate, Delay: rtt / 2},
	})
	return eng, NewNet(eng, path)
}

// bulkSender writes continuously for the whole run.
func bulkSender(eng *sim.Engine, c *Conn, chunk int) {
	eng.Spawn("writer", func(p *sim.Proc) {
		for {
			if c.Sender.Write(p, chunk) == 0 {
				return
			}
		}
	})
}

// promptReader reads as fast as data arrives.
func promptReader(eng *sim.Engine, c *Conn) {
	eng.Spawn("reader", func(p *sim.Proc) {
		for {
			if c.Receiver.Read(p, 1<<20) == 0 {
				return
			}
		}
	})
}

func TestBulkTransferSaturatesLink(t *testing.T) {
	eng, net := testbed(1, 10*units.Mbps, 50*units.Millisecond, nil)
	c := Dial(net, ConnConfig{CC: cc.KindCubic})
	bulkSender(eng, c, 16<<10)
	promptReader(eng, c)
	const dur = 30 * units.Second
	eng.RunUntil(units.Time(dur))
	got := float64(c.Receiver.ReadCum()) * 8 / dur.Seconds() // bits/s
	// Goodput should be 85–100% of the 10 Mbps bottleneck.
	if got < 8.5e6 || got > 10.1e6 {
		t.Fatalf("goodput = %.2f Mbps, want ≈ 10", got/1e6)
	}
	eng.Shutdown()
}

func TestBulkTransferAllCCKinds(t *testing.T) {
	for _, kind := range []cc.Kind{cc.KindReno, cc.KindCubic, cc.KindVegas, cc.KindBBR} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			eng, net := testbed(2, 20*units.Mbps, 40*units.Millisecond, nil)
			c := Dial(net, ConnConfig{CC: kind})
			bulkSender(eng, c, 16<<10)
			promptReader(eng, c)
			const dur = 20 * units.Second
			eng.RunUntil(units.Time(dur))
			got := float64(c.Receiver.ReadCum()) * 8 / dur.Seconds()
			if got < 12e6 {
				t.Fatalf("%s goodput = %.2f Mbps, want > 12", kind, got/1e6)
			}
			eng.Shutdown()
		})
	}
}

func TestStreamIntegrity(t *testing.T) {
	// With 1% random loss, every written byte must still arrive in order
	// exactly once (reliability under retransmission).
	eng := sim.New(3)
	path := netem.NewPath(eng, netem.PathConfig{
		Forward: netem.LinkConfig{
			Rate: 10 * units.Mbps, Delay: 25 * units.Millisecond, LossRate: 0.01,
		},
		Reverse: netem.LinkConfig{Rate: 10 * units.Mbps, Delay: 25 * units.Millisecond},
	})
	net := NewNet(eng, path)
	c := Dial(net, ConnConfig{CC: cc.KindCubic})

	const total = 2 << 20 // 2 MB
	eng.Spawn("writer", func(p *sim.Proc) { c.Sender.WriteFull(p, total) })
	var read int
	eng.Spawn("reader", func(p *sim.Proc) {
		for read < total {
			n := c.Receiver.Read(p, 64<<10)
			if n == 0 {
				return
			}
			read += n
		}
	})
	eng.RunUntil(units.Time(60 * units.Second))
	if read != total {
		t.Fatalf("read %d of %d bytes", read, total)
	}
	if c.Receiver.Endpoint().RcvNxt() != uint64(total) {
		t.Fatalf("RcvNxt = %d", c.Receiver.Endpoint().RcvNxt())
	}
	if c.Sender.GetsockoptTCPInfo().TotalRetrans == 0 {
		t.Fatal("no retransmissions despite 1% loss — loss path untested")
	}
	eng.Shutdown()
}

func TestBlockingWriteRespectsBuffer(t *testing.T) {
	eng, net := testbed(4, 10*units.Mbps, 50*units.Millisecond, nil)
	c := Dial(net, ConnConfig{CC: cc.KindCubic, SndBuf: 64 << 10})
	bulkSender(eng, c, 32<<10)
	promptReader(eng, c)
	// Sample occupancy during the run.
	maxUsed := 0
	var probe func()
	probe = func() {
		if u := c.Sender.SndBufUsed(); u > maxUsed {
			maxUsed = u
		}
		eng.Schedule(10*units.Millisecond, probe)
	}
	eng.Schedule(0, probe)
	eng.RunUntil(units.Time(10 * units.Second))
	if maxUsed > 64<<10 {
		t.Fatalf("send buffer occupancy %d exceeded SO_SNDBUF 64KiB", maxUsed)
	}
	if maxUsed < 32<<10 {
		t.Fatalf("send buffer never filled (%d); writer not blocking-limited", maxUsed)
	}
	if c.Sender.SndBufCap() != 64<<10 {
		t.Fatalf("cap = %d", c.Sender.SndBufCap())
	}
	eng.Shutdown()
}

func TestAutotuneGrowsBufferWithCwnd(t *testing.T) {
	eng, net := testbed(5, 10*units.Mbps, 50*units.Millisecond, nil)
	c := Dial(net, ConnConfig{CC: cc.KindCubic}) // autotuned
	bulkSender(eng, c, 16<<10)
	promptReader(eng, c)
	eng.RunUntil(units.Time(20 * units.Second))
	info := c.Sender.GetsockoptTCPInfo()
	cwndBytes := info.SndCwnd * info.SndMSS
	if c.Sender.SndBufCap() < cwndBytes {
		t.Fatalf("autotuned sndbuf %d < cwnd %d", c.Sender.SndBufCap(), cwndBytes)
	}
	// The paper's premise: the tuner holds ≈2 cwnd of buffer, so the
	// occupancy (and hence sender-side delay) is large.
	if c.Sender.SndBufUsed() < cwndBytes {
		t.Fatalf("occupancy %d below one cwnd %d — no bufferbloat", c.Sender.SndBufUsed(), cwndBytes)
	}
	eng.Shutdown()
}

func TestTCPInfoFields(t *testing.T) {
	eng, net := testbed(6, 10*units.Mbps, 50*units.Millisecond, nil)
	c := Dial(net, ConnConfig{CC: cc.KindCubic})
	bulkSender(eng, c, 16<<10)
	promptReader(eng, c)
	eng.RunUntil(units.Time(5 * units.Second))
	si := c.Sender.GetsockoptTCPInfo()
	ri := c.Receiver.GetsockoptTCPInfo()
	if si.BytesAcked == 0 || si.SndCwnd == 0 || si.SndMSS == 0 || si.SndBuf == 0 {
		t.Fatalf("sender info incomplete: %+v", si)
	}
	if si.RTT < 50*units.Millisecond {
		t.Fatalf("SRTT %v below base RTT", si.RTT)
	}
	if ri.SegsIn == 0 || ri.RcvMSS == 0 {
		t.Fatalf("receiver info incomplete: %+v", ri)
	}
	// segs_in × rcv_mss should approximate the delivered byte count —
	// the very estimate Algorithm 2 relies on.
	est := uint64(ri.SegsIn * ri.RcvMSS)
	actual := c.Receiver.Endpoint().RcvNxt()
	if est < actual || est > actual*110/100+uint64(10*ri.RcvMSS) {
		t.Fatalf("segs_in*mss = %d vs received %d — estimate out of band", est, actual)
	}
	eng.Shutdown()
}

func TestTraceHooksFire(t *testing.T) {
	eng, net := testbed(7, 10*units.Mbps, 50*units.Millisecond, nil)
	var wrote, txed, rxed, read int
	c := Dial(net, ConnConfig{
		CC: cc.KindCubic,
		SenderHooks: TraceHooks{
			AppWrite:    func(end uint64, n int) { wrote += n },
			TCPTransmit: func(seq uint64, n int, retx bool) { txed += n },
		},
		ReceiverHooks: TraceHooks{
			TCPReceive: func(seq uint64, n int) { rxed += n },
			AppRead:    func(end uint64, n int) { read += n },
		},
	})
	bulkSender(eng, c, 16<<10)
	promptReader(eng, c)
	eng.RunUntil(units.Time(5 * units.Second))
	if wrote == 0 || txed == 0 || rxed == 0 || read == 0 {
		t.Fatalf("hooks: wrote=%d txed=%d rxed=%d read=%d", wrote, txed, rxed, read)
	}
	if read != rxed && read > rxed {
		t.Fatalf("read %d > received %d", read, rxed)
	}
	if txed < rxed {
		t.Fatalf("transmitted %d < received %d", txed, rxed)
	}
	eng.Shutdown()
}

func TestMultipleFlowsShareFairly(t *testing.T) {
	eng, net := testbed(8, 30*units.Mbps, 50*units.Millisecond, nil)
	var conns []*Conn
	for i := 0; i < 3; i++ {
		c := Dial(net, ConnConfig{CC: cc.KindCubic})
		bulkSender(eng, c, 16<<10)
		promptReader(eng, c)
		conns = append(conns, c)
	}
	const dur = 60 * units.Second
	eng.RunUntil(units.Time(dur))
	var rates []float64
	var sum float64
	for _, c := range conns {
		r := float64(c.Receiver.ReadCum()) * 8 / dur.Seconds()
		rates = append(rates, r)
		sum += r
	}
	if sum < 25e6 {
		t.Fatalf("aggregate %.1f Mbps under 30 Mbps link", sum/1e6)
	}
	// Jain's fairness index over the three Cubic flows.
	var sq float64
	for _, r := range rates {
		sq += r * r
	}
	jain := sum * sum / (3 * sq)
	if jain < 0.85 {
		t.Fatalf("fairness index %.3f (rates %v)", jain, rates)
	}
	eng.Shutdown()
}

func TestVegasKeepsQueueSmall(t *testing.T) {
	// Vegas (delay-based) should hold a far smaller bottleneck queue than
	// Cubic on the same path.
	queue := func(kind cc.Kind) int {
		eng, net := testbed(9, 10*units.Mbps, 50*units.Millisecond, nil)
		c := Dial(net, ConnConfig{CC: kind})
		bulkSender(eng, c, 16<<10)
		promptReader(eng, c)
		maxQ := 0
		var probe func()
		probe = func() {
			if q := net.Path().Forward.QueueLen(); q > maxQ {
				maxQ = q
			}
			eng.Schedule(50*units.Millisecond, probe)
		}
		eng.Schedule(5*units.Second, probe) // after slow start
		eng.RunUntil(units.Time(30 * units.Second))
		eng.Shutdown()
		return maxQ
	}
	cubicQ := queue(cc.KindCubic)
	vegasQ := queue(cc.KindVegas)
	if vegasQ*5 > cubicQ {
		t.Fatalf("Vegas queue %d not ≪ Cubic queue %d", vegasQ, cubicQ)
	}
	eng := sim.New(0)
	_ = eng
}

func TestCloseUnblocksAndStops(t *testing.T) {
	eng, net := testbed(10, units.Mbps, 100*units.Millisecond, nil)
	c := Dial(net, ConnConfig{CC: cc.KindCubic, SndBuf: 8 << 10})
	done := false
	eng.Spawn("writer", func(p *sim.Proc) {
		for c.Sender.Write(p, 64<<10) > 0 {
		}
		done = true
	})
	eng.Schedule(2*units.Second, func() { c.Close() })
	eng.RunUntil(units.Time(5 * units.Second))
	if !done {
		t.Fatal("Close did not unblock the writer")
	}
	eng.Shutdown()
}
