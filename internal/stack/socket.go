package stack

import (
	"element/internal/cc"
	"element/internal/pkt"
	"element/internal/sim"
	"element/internal/sockbuf"
	"element/internal/tcp"
	"element/internal/tcpinfo"
	"element/internal/telemetry"
	"element/internal/units"
)

// TraceHooks are the ground-truth observation points of the paper's
// Figure 1/5: application write/read at the socket API, and TCP
// transmit/receive in the transport layer — plus finer-grained points
// (in-order advance, raw packet arrival, sndbuf resizes) used by the
// waterfall attribution. All hooks are optional.
type TraceHooks struct {
	AppWrite     func(endSeq uint64, n int)         // socket write accepted n bytes up to endSeq
	TCPTransmit  func(seq uint64, n int, retx bool) // tcp_transmit_skb
	TCPReceive   func(seq uint64, n int)            // tcp_v4_do_rcv (new bytes only)
	TCPInOrder   func(cum uint64)                   // rcv_nxt advanced (reassembly released bytes)
	AppRead      func(endSeq uint64, n int)         // socket read consumed n bytes up to endSeq
	PacketSent   func(p *pkt.Packet)                // data packet handed to the NIC
	AckSent      func(p *pkt.Packet)                // ACK handed to the NIC
	PacketRecv   func(p *pkt.Packet)                // data packet arriving at the receiver's NIC
	SndbufResize func(from, to int)                 // send-buffer capacity change (autotune/SO_SNDBUF)
	_            struct{}                           // force keyed literals
}

// MergeTraceHooks composes two hook sets so several observers (the
// ground-truth collector and a waterfall recorder, say) can watch the same
// connection. For each observation point, a fires before b.
func MergeTraceHooks(a, b TraceHooks) TraceHooks {
	m := TraceHooks{}
	m.AppWrite = merge2(a.AppWrite, b.AppWrite)
	m.TCPTransmit = mergeTx(a.TCPTransmit, b.TCPTransmit)
	m.TCPReceive = merge2(a.TCPReceive, b.TCPReceive)
	m.TCPInOrder = merge1(a.TCPInOrder, b.TCPInOrder)
	m.AppRead = merge2(a.AppRead, b.AppRead)
	m.PacketSent = mergePkt(a.PacketSent, b.PacketSent)
	m.AckSent = mergePkt(a.AckSent, b.AckSent)
	m.PacketRecv = mergePkt(a.PacketRecv, b.PacketRecv)
	m.SndbufResize = mergeInt2(a.SndbufResize, b.SndbufResize)
	return m
}

func merge1(a, b func(uint64)) func(uint64) {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	}
	return func(x uint64) { a(x); b(x) }
}

func mergeTx(a, b func(uint64, int, bool)) func(uint64, int, bool) {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	}
	return func(seq uint64, n int, retx bool) { a(seq, n, retx); b(seq, n, retx) }
}

func merge2(a, b func(uint64, int)) func(uint64, int) {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	}
	return func(x uint64, n int) { a(x, n); b(x, n) }
}

func mergeInt2(a, b func(int, int)) func(int, int) {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	}
	return func(x, y int) { a(x, y); b(x, y) }
}

func mergePkt(a, b func(*pkt.Packet)) func(*pkt.Packet) {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	}
	return func(p *pkt.Packet) { a(p); b(p) }
}

// ConnConfig configures one simulated TCP connection.
type ConnConfig struct {
	// FlowID pins the connection's flow identifier (0 = allocate from the
	// Net). Callers running one private Net per connection — the fleet —
	// set this to keep IDs unique across Nets, so by-flow dispatch
	// (waterfall link taps, flow-scoped telemetry) never collides.
	FlowID int
	// CC selects the congestion-control algorithm (default cubic).
	CC cc.Kind
	// MSS is the segment size (default tcp.DefaultMSS).
	MSS int
	// SndBuf pins the send buffer (SO_SNDBUF); 0 enables Linux-style
	// auto-tuning.
	SndBuf int
	// SndBufMax caps auto-tuning (0 = sockbuf.DefaultSndBufMax).
	SndBufMax int
	// RcvBuf sets the receive buffer capacity (0 = default).
	RcvBuf int
	// ECN negotiates ECN on the connection.
	ECN bool
	// SenderHooks/ReceiverHooks attach ground-truth tracing to each side.
	SenderHooks   TraceHooks
	ReceiverHooks TraceHooks
	// Telem records the connection's activity (send-buffer occupancy and
	// writer blocking under "sockbuf", transport events under "tcp"), scoped
	// to the connection's flow ID. Nil disables instrumentation.
	Telem *telemetry.Telemetry
}

// Conn is one established TCP connection across a Net: a sending Socket at
// the A side and a receiving Socket at the B side.
//
// The connection is created established (no handshake): the paper's
// measurements all concern the steady data phase.
type Conn struct {
	FlowID   int
	Sender   *Socket
	Receiver *Socket
}

// Dial creates a connection whose data flows from the A side to the B side
// of n.
func Dial(n *Net, cfg ConnConfig) *Conn {
	return dial(n, cfg, false)
}

// DialReverse creates a connection whose data flows from the B side to the
// A side — e.g. a control/feedback channel running against the main
// stream's direction (the VR headset's viewpoint channel).
func DialReverse(n *Net, cfg ConnConfig) *Conn {
	return dial(n, cfg, true)
}

func dial(n *Net, cfg ConnConfig, reverse bool) *Conn {
	id := cfg.FlowID
	if id == 0 {
		id = n.allocFlowID()
	}
	eng := n.eng
	mss := cfg.MSS
	if mss == 0 {
		mss = tcp.DefaultMSS
	}
	alg := cc.MustNew(cfg.CC, mss, eng.Rand())

	sndSock := &Socket{eng: eng, flowID: id}
	rcvSock := &Socket{eng: eng, flowID: id}
	sndSock.hooks = cfg.SenderHooks
	rcvSock.hooks = cfg.ReceiverHooks

	sndSock.snd = sockbuf.NewSendBuffer(cfg.SndBuf, cfg.SndBufMax)
	if h := cfg.SenderHooks.SndbufResize; h != nil {
		sndSock.snd.SetOnResize(h)
	}
	rcvBuf := sockbuf.NewReceiveBuffer(cfg.RcvBuf)

	var tcpSc *telemetry.Scope
	if cfg.Telem != nil {
		sbSc := cfg.Telem.Scope("sockbuf").WithFlow(id)
		sndSock.snd.Instrument(sbSc)
		sndSock.telem = sbSc
		sndSock.blocksC = sbSc.Counter("writer_blocks")
		sndSock.blocksS = sbSc.Sampler("writer_blocked", telemetry.DefaultSampleGap, "want_bytes")
		tcpSc = cfg.Telem.Scope("tcp").WithFlow(id)
	}

	sndSock.writable = sim.NewCond(eng)
	rcvSock.readable = sim.NewCond(eng)

	// Data direction: sender at A unless reversed.
	sendData, sendAck := n.path.SendAtoB, n.path.SendBtoA
	if reverse {
		sendData, sendAck = n.path.SendBtoA, n.path.SendAtoB
	}

	sndSock.ep = tcp.New(eng, tcp.Config{
		FlowID: id,
		MSS:    mss,
		CC:     alg,
		ECN:    cfg.ECN,
		Telem:  tcpSc,
		Out: func(p *pkt.Packet) {
			if sndSock.hooks.PacketSent != nil {
				sndSock.hooks.PacketSent(p)
			}
			sendData(p)
		},
		OnAcked: func() {
			sndSock.snd.Ack(sndSock.ep.SndUna())
			sndSock.snd.Tune(alg.CwndBytes())
			sndSock.writable.Broadcast()
		},
		OnTransmit: sndSock.hooks.TCPTransmit,
	})

	rcvSock.ep = tcp.New(eng, tcp.Config{
		FlowID: id,
		MSS:    mss,
		ECN:    cfg.ECN,
		Telem:  tcpSc,
		RcvBuf: rcvBuf,
		Out: func(p *pkt.Packet) {
			if rcvSock.hooks.AckSent != nil {
				rcvSock.hooks.AckSent(p)
			}
			sendAck(p)
		},
		OnReadable:   func() { rcvSock.readable.Broadcast() },
		OnReceiveNew: rcvSock.hooks.TCPReceive,
		OnInOrder:    rcvSock.hooks.TCPInOrder,
	})

	// The receiver-side dispatch optionally observes raw arriving data
	// packets before TCP processes them (the waterfall's wire→reassembly
	// boundary). ACKs flow to the sender socket and are not reported.
	rcvHandle := rcvSock.ep.Handle
	if h := rcvSock.hooks.PacketRecv; h != nil {
		rcvHandle = func(p *pkt.Packet) {
			if p.PayloadLen > 0 {
				h(p)
			}
			rcvSock.ep.Handle(p)
		}
	}
	if reverse {
		n.atB[id] = sndSock.ep.Handle
		n.atA[id] = rcvHandle
	} else {
		n.atA[id] = sndSock.ep.Handle
		n.atB[id] = rcvHandle
	}

	return &Conn{FlowID: id, Sender: sndSock, Receiver: rcvSock}
}

// Close tears the connection down (stops timers on both sides).
func (c *Conn) Close() {
	c.Sender.ep.Close()
	c.Receiver.ep.Close()
	c.Sender.writable.Broadcast()
	c.Receiver.readable.Broadcast()
	c.Sender.closed = true
	c.Receiver.closed = true
}

// Socket is one side of a connection, exposing the blocking BSD-style
// calls the paper's applications use plus getsockopt(TCP_INFO).
type Socket struct {
	eng    *sim.Engine
	flowID int
	ep     *tcp.Endpoint
	closed bool

	// Sender half.
	snd      *sockbuf.SendBuffer
	writable *sim.Cond

	// Receiver half.
	readable *sim.Cond
	readCum  uint64

	hooks TraceHooks

	// Telemetry handles (nil when uninstrumented).
	telem   *telemetry.Scope
	blocksC *telemetry.Counter
	blocksS *telemetry.Sampler
}

// FlowID reports the connection's flow identifier.
func (s *Socket) FlowID() int { return s.flowID }

// Write blocks (in virtual time) until at least one byte of the n requested
// fits into the send buffer, then hands the accepted bytes to TCP. It
// returns the number of bytes accepted, possibly less than n — exactly the
// semantics of a blocking socket write for a byte count. Returns 0 when
// the socket is closed.
func (s *Socket) Write(p *sim.Proc, n int) int {
	if s.snd == nil {
		panic("stack: Write on a receive-only socket")
	}
	for !s.closed {
		if got := s.snd.Write(n); got > 0 {
			end := s.snd.Written()
			if s.hooks.AppWrite != nil {
				s.hooks.AppWrite(end, got)
			}
			s.ep.SetAvailable(end)
			return got
		}
		if s.telem != nil {
			s.blocksC.Inc()
			if now := s.eng.Now(); s.blocksS.DueAt(now) {
				s.blocksS.SampleValsAt(now, float64(n))
			}
		}
		s.writable.Wait(p)
	}
	return 0
}

// WriteFull writes exactly n bytes, blocking as needed. It returns n, or
// fewer if the socket closes mid-write.
func (s *Socket) WriteFull(p *sim.Proc, n int) int {
	total := 0
	for total < n && !s.closed {
		got := s.Write(p, n-total)
		if got == 0 {
			break
		}
		total += got
	}
	return total
}

// Read blocks until at least one byte is readable, consumes up to max
// bytes, and returns the count. Returns 0 when the socket is closed.
func (s *Socket) Read(p *sim.Proc, max int) int {
	for !s.closed {
		if avail := s.ep.ReadableBytes(); avail > 0 {
			n := avail
			if n > max {
				n = max
			}
			cum := s.ep.Consume(n)
			s.readCum = cum
			if s.hooks.AppRead != nil {
				s.hooks.AppRead(cum, n)
			}
			return n
		}
		s.readable.Wait(p)
	}
	return 0
}

// ReadCum reports the cumulative bytes the application has read.
func (s *Socket) ReadCum() uint64 { return s.readCum }

// WrittenCum reports the cumulative bytes the application has written.
func (s *Socket) WrittenCum() uint64 {
	if s.snd == nil {
		return 0
	}
	return s.snd.Written()
}

// AckedCum reports the cumulative bytes acknowledged by the peer.
func (s *Socket) AckedCum() uint64 { return s.ep.SndUna() }

// GetsockoptTCPInfo returns the TCP_INFO snapshot, available at user level
// without privileges — the only kernel-derived input ELEMENT uses.
func (s *Socket) GetsockoptTCPInfo() tcpinfo.TCPInfo {
	info := s.ep.Info()
	if s.snd != nil {
		info.SndBuf = s.snd.Cap()
	}
	return info
}

// SetSndBuf pins the send-buffer size, as setsockopt(SO_SNDBUF) does,
// disabling auto-tuning. (Like Linux, which doubles the requested value,
// callers should pass the byte count they actually want buffered.)
func (s *Socket) SetSndBuf(bytes int) {
	if s.snd != nil {
		s.snd.SetCap(bytes)
		s.writable.Broadcast()
	}
}

// SndBufCap reports the current send-buffer capacity.
func (s *Socket) SndBufCap() int {
	if s.snd == nil {
		return 0
	}
	return s.snd.Cap()
}

// SndBufUsed reports the current send-buffer occupancy (written, unacked).
func (s *Socket) SndBufUsed() int {
	if s.snd == nil {
		return 0
	}
	return s.snd.Used()
}

// SRTT exposes the smoothed RTT (also available via GetsockoptTCPInfo).
func (s *Socket) SRTT() units.Duration { return s.ep.SRTT() }

// Endpoint exposes the TCP machine for white-box tests.
func (s *Socket) Endpoint() *tcp.Endpoint { return s.ep }
