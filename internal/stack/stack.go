// Package stack ties the TCP machine to application code: blocking
// Write/Read socket calls running in virtual time, Linux-style send-buffer
// auto-tuning, the getsockopt(TCP_INFO) surface ELEMENT consumes, and a
// flow demultiplexer so many connections can share one emulated path.
package stack

import (
	"element/internal/netem"
	"element/internal/pkt"
	"element/internal/sim"
)

// Net multiplexes any number of connections over one duplex path,
// dispatching delivered packets to per-flow endpoints by FlowID — the
// simulator's equivalent of the host's IP layer.
type Net struct {
	eng    *sim.Engine
	path   *netem.Path
	atA    map[int]func(*pkt.Packet)
	atB    map[int]func(*pkt.Packet)
	nextID int
}

// NewNet wraps path with a flow demultiplexer.
func NewNet(eng *sim.Engine, path *netem.Path) *Net {
	n := &Net{
		eng:  eng,
		path: path,
		atA:  make(map[int]func(*pkt.Packet)),
		atB:  make(map[int]func(*pkt.Packet)),
	}
	path.AttachA(func(p *pkt.Packet) {
		if h, ok := n.atA[p.FlowID]; ok {
			h(p)
		}
	})
	path.AttachB(func(p *pkt.Packet) {
		if h, ok := n.atB[p.FlowID]; ok {
			h(p)
		}
	})
	return n
}

// Engine returns the engine the network runs on.
func (n *Net) Engine() *sim.Engine { return n.eng }

// Path returns the underlying duplex path.
func (n *Net) Path() *netem.Path { return n.path }

// allocFlowID hands out unique flow IDs.
func (n *Net) allocFlowID() int {
	n.nextID++
	return n.nextID
}

// AllocProbeFlowID reserves a flow ID for a non-TCP user of the path (a
// probing tool or a UDP-based protocol).
func (n *Net) AllocProbeFlowID() int { return n.allocFlowID() }

// RegisterA installs a raw packet handler for a flow at the A side.
func (n *Net) RegisterA(flowID int, h func(*pkt.Packet)) { n.atA[flowID] = h }

// RegisterB installs a raw packet handler for a flow at the B side.
func (n *Net) RegisterB(flowID int, h func(*pkt.Packet)) { n.atB[flowID] = h }
