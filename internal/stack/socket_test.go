package stack

import (
	"testing"

	"element/internal/cc"
	"element/internal/sim"
	"element/internal/units"
)

func TestWriteOnReceiveOnlySocketPanics(t *testing.T) {
	_, net := testbed(41, 10*units.Mbps, 50*units.Millisecond, nil)
	c := Dial(net, ConnConfig{CC: cc.KindCubic})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	// The misuse check fires before any blocking, so no process is needed.
	c.Receiver.Write(nil, 100)
}

func TestReadCumAndAckedCum(t *testing.T) {
	eng, net := testbed(42, 10*units.Mbps, 50*units.Millisecond, nil)
	c := Dial(net, ConnConfig{CC: cc.KindCubic})
	eng.Spawn("w", func(p *sim.Proc) { c.Sender.WriteFull(p, 100<<10) })
	eng.Spawn("r", func(p *sim.Proc) {
		for c.Receiver.Read(p, 1<<20) > 0 {
		}
	})
	eng.RunUntil(units.Time(5 * units.Second))
	eng.Shutdown()
	if c.Sender.WrittenCum() != 100<<10 {
		t.Fatalf("WrittenCum = %d", c.Sender.WrittenCum())
	}
	if c.Receiver.ReadCum() != 100<<10 {
		t.Fatalf("ReadCum = %d", c.Receiver.ReadCum())
	}
	if c.Sender.AckedCum() != 100<<10 {
		t.Fatalf("AckedCum = %d", c.Sender.AckedCum())
	}
	// Receive-only introspection on the sender-side getters.
	if c.Receiver.WrittenCum() != 0 || c.Receiver.SndBufCap() != 0 || c.Receiver.SndBufUsed() != 0 {
		t.Fatal("receiver socket reports sender-side state")
	}
}

func TestSetSndBufUnblocksWaiters(t *testing.T) {
	eng, net := testbed(43, units.Mbps, 200*units.Millisecond, nil)
	c := Dial(net, ConnConfig{CC: cc.KindCubic, SndBuf: 8 << 10})
	progressed := uint64(0)
	eng.Spawn("w", func(p *sim.Proc) {
		for {
			if c.Sender.Write(p, 64<<10) == 0 {
				return
			}
			progressed = c.Sender.WrittenCum()
		}
	})
	eng.RunUntil(units.Time(500 * units.Millisecond))
	before := progressed
	c.Sender.SetSndBuf(1 << 20) // enlarge: blocked writer must resume now
	eng.RunUntil(units.Time(600 * units.Millisecond))
	eng.Shutdown()
	if progressed <= before {
		t.Fatalf("writer did not resume after SetSndBuf (%d -> %d)", before, progressed)
	}
	if c.Sender.SndBufCap() != 1<<20 {
		t.Fatalf("cap = %d", c.Sender.SndBufCap())
	}
}

func TestFlowIDsDistinct(t *testing.T) {
	eng, net := testbed(44, 10*units.Mbps, 50*units.Millisecond, nil)
	a := Dial(net, ConnConfig{})
	b := Dial(net, ConnConfig{})
	if a.FlowID == b.FlowID {
		t.Fatal("flow ids collide")
	}
	if a.Sender.FlowID() != a.FlowID || a.Receiver.FlowID() != a.FlowID {
		t.Fatal("socket flow ids inconsistent")
	}
	_ = eng
}
