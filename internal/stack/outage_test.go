package stack

import (
	"testing"

	"element/internal/aqm"
	"element/internal/cc"
	"element/internal/netem"
	"element/internal/sim"
	"element/internal/units"
)

// TestLinkOutageRecovery injects a 3-second total outage (100% loss) into a
// running transfer: the sender must back off via RTO during the outage and
// resume cleanly afterwards with the stream intact.
func TestLinkOutageRecovery(t *testing.T) {
	eng := sim.New(51)
	path := netem.NewPath(eng, netem.PathConfig{
		// Shallow queue keeps the pre-outage SRTT sane so the recovery
		// speed reflects the RTO machinery, not a 1.2 s bloated estimate.
		Forward: netem.LinkConfig{
			Rate: 10 * units.Mbps, Delay: 25 * units.Millisecond,
			Discipline: aqm.NewFIFO(aqm.Config{LimitPackets: 100}),
		},
		Reverse: netem.LinkConfig{Rate: 10 * units.Mbps, Delay: 25 * units.Millisecond},
	})
	net := NewNet(eng, path)
	c := Dial(net, ConnConfig{CC: cc.KindCubic})
	bulkSender(eng, c, 16<<10)
	promptReader(eng, c)

	eng.Schedule(10*units.Second, func() { path.Forward.SetLossRate(1.0) })
	eng.Schedule(13*units.Second, func() { path.Forward.SetLossRate(0) })

	var readAtOutageEnd uint64
	eng.Schedule(13*units.Second, func() { readAtOutageEnd = c.Receiver.ReadCum() })

	eng.RunUntil(units.Time(30 * units.Second))
	eng.Shutdown()

	final := c.Receiver.ReadCum()
	if final <= readAtOutageEnd {
		t.Fatalf("transfer did not resume after outage (stuck at %d)", final)
	}
	// Post-outage throughput: at least ~5 Mbps over the remaining 17s
	// (RTO backoff delays the restart, slow start rebuilds).
	post := float64(final-readAtOutageEnd) * 8 / 17
	if post < 5e6 {
		t.Fatalf("post-outage goodput %.2f Mbps", post/1e6)
	}
	// Stream integrity: receiver byte count consistent with sender's view.
	if c.Sender.AckedCum() > c.Sender.WrittenCum() {
		t.Fatal("acked beyond written")
	}
	if got := c.Receiver.Endpoint().RcvNxt(); got < final {
		t.Fatalf("rcvNxt %d < read %d", got, final)
	}
}

// TestRTTChangeAdaptation doubles the propagation delay mid-flow: the
// RTO/SRTT estimators must adapt without spurious retransmission storms.
func TestRTTChangeAdaptation(t *testing.T) {
	eng := sim.New(52)
	path := netem.NewPath(eng, netem.PathConfig{
		Forward: netem.LinkConfig{Rate: 10 * units.Mbps, Delay: 25 * units.Millisecond},
		Reverse: netem.LinkConfig{Rate: 10 * units.Mbps, Delay: 25 * units.Millisecond},
	})
	net := NewNet(eng, path)
	c := Dial(net, ConnConfig{CC: cc.KindVegas}) // keep the queue out of the picture
	bulkSender(eng, c, 16<<10)
	promptReader(eng, c)
	eng.RunUntil(units.Time(10 * units.Second))
	retransBefore := c.Sender.GetsockoptTCPInfo().TotalRetrans
	path.Forward.SetDelay(100 * units.Millisecond)
	path.Reverse.SetDelay(100 * units.Millisecond)
	eng.RunUntil(units.Time(25 * units.Second))
	eng.Shutdown()
	retransAfter := c.Sender.GetsockoptTCPInfo().TotalRetrans
	// The one-time RTT jump may cost at most a handful of spurious
	// retransmissions, not a storm.
	if retransAfter-retransBefore > 50 {
		t.Fatalf("RTT change caused %d retransmissions", retransAfter-retransBefore)
	}
	info := c.Sender.GetsockoptTCPInfo()
	if info.RTT < 180*units.Millisecond {
		t.Fatalf("SRTT %v did not adapt to the 200 ms path", info.RTT)
	}
}
