package stack

import (
	"testing"

	"element/internal/aqm"
	"element/internal/cc"
	"element/internal/netem"
	"element/internal/sim"
	"element/internal/units"
)

func TestECNAvoidsRetransmissions(t *testing.T) {
	// Cubic over CoDel: with ECN the AQM marks instead of dropping, so the
	// flow should see (almost) no retransmissions while still backing off.
	run := func(ecn bool) (retrans int, goodput float64) {
		eng := sim.New(31)
		disc := aqm.MustNew(aqm.KindCoDel, aqm.Config{ECN: ecn}, eng.Rand())
		path := netem.NewPath(eng, netem.PathConfig{
			Forward: netem.LinkConfig{Rate: 10 * units.Mbps, Delay: 25 * units.Millisecond, Discipline: disc},
			Reverse: netem.LinkConfig{Rate: 10 * units.Mbps, Delay: 25 * units.Millisecond},
		})
		net := NewNet(eng, path)
		c := Dial(net, ConnConfig{CC: cc.KindCubic, ECN: ecn})
		bulkSender(eng, c, 64<<10)
		promptReader(eng, c)
		const dur = 30 * units.Second
		eng.RunUntil(units.Time(dur))
		eng.Shutdown()
		return c.Sender.GetsockoptTCPInfo().TotalRetrans,
			float64(c.Receiver.ReadCum()) * 8 / dur.Seconds()
	}
	retransNoECN, _ := run(false)
	retransECN, goodputECN := run(true)
	if retransNoECN == 0 {
		t.Fatal("CoDel without ECN never dropped — nothing to compare")
	}
	if retransECN > retransNoECN/4 {
		t.Fatalf("ECN retransmissions %d not ≪ drop-mode %d", retransECN, retransNoECN)
	}
	if goodputECN < 8e6 {
		t.Fatalf("ECN goodput %.2f Mbps", goodputECN/1e6)
	}
}

func TestECNKeepsCwndResponsive(t *testing.T) {
	// ECN marks must still make Cubic back off: the CoDel+ECN queue should
	// stay controlled, not grow to the tail-drop limit.
	eng := sim.New(32)
	disc := aqm.MustNew(aqm.KindCoDel, aqm.Config{ECN: true}, eng.Rand())
	path := netem.NewPath(eng, netem.PathConfig{
		Forward: netem.LinkConfig{Rate: 10 * units.Mbps, Delay: 25 * units.Millisecond, Discipline: disc},
		Reverse: netem.LinkConfig{Rate: 10 * units.Mbps, Delay: 25 * units.Millisecond},
	})
	net := NewNet(eng, path)
	c := Dial(net, ConnConfig{CC: cc.KindCubic, ECN: true})
	bulkSender(eng, c, 64<<10)
	promptReader(eng, c)
	maxQ := 0
	var probe func()
	probe = func() {
		if q := path.Forward.QueueLen(); q > maxQ {
			maxQ = q
		}
		eng.Schedule(100*units.Millisecond, probe)
	}
	eng.Schedule(5*units.Second, probe)
	eng.RunUntil(units.Time(30 * units.Second))
	eng.Shutdown()
	if maxQ > 300 {
		t.Fatalf("queue grew to %d packets despite ECN signals", maxQ)
	}
	if st := path.Forward.QueueStats(); st.ECNMarks == 0 {
		t.Fatal("no CE marks recorded")
	}
}

func TestBBRPacingSmoothsBursts(t *testing.T) {
	// Compare the bottleneck queue occupancy of BBR (paced) vs Cubic
	// (unpaced) on the same path: BBR's standing queue should be a small
	// fraction of Cubic's.
	run := func(kind cc.Kind) int {
		eng := sim.New(33)
		path := netem.NewPath(eng, netem.PathConfig{
			Forward: netem.LinkConfig{Rate: 20 * units.Mbps, Delay: 25 * units.Millisecond},
			Reverse: netem.LinkConfig{Rate: 20 * units.Mbps, Delay: 25 * units.Millisecond},
		})
		net := NewNet(eng, path)
		c := Dial(net, ConnConfig{CC: kind})
		bulkSender(eng, c, 64<<10)
		promptReader(eng, c)
		sum, n := 0, 0
		var probe func()
		probe = func() {
			sum += path.Forward.QueueLen()
			n++
			eng.Schedule(100*units.Millisecond, probe)
		}
		eng.Schedule(10*units.Second, probe) // after startup
		eng.RunUntil(units.Time(40 * units.Second))
		eng.Shutdown()
		return sum / n
	}
	cubicQ := run(cc.KindCubic)
	bbrQ := run(cc.KindBBR)
	if bbrQ*3 > cubicQ {
		t.Fatalf("BBR avg queue %d not ≪ Cubic %d", bbrQ, cubicQ)
	}
}

func TestZeroWindowStallsAndRecovers(t *testing.T) {
	// A receiver that stops reading must eventually stall the sender via
	// the advertised window; resuming reads must restart the transfer.
	eng := sim.New(34)
	path := netem.NewPath(eng, netem.PathConfig{
		Forward: netem.LinkConfig{Rate: 50 * units.Mbps, Delay: 5 * units.Millisecond},
		Reverse: netem.LinkConfig{Rate: 50 * units.Mbps, Delay: 5 * units.Millisecond},
	})
	net := NewNet(eng, path)
	c := Dial(net, ConnConfig{CC: cc.KindCubic, RcvBuf: 256 << 10})
	bulkSender(eng, c, 64<<10)

	// No reader for the first 5 seconds.
	readCh := sim.NewCond(eng)
	eng.Spawn("lazy-reader", func(p *sim.Proc) {
		readCh.Wait(p)
		for c.Receiver.Read(p, 1<<20) > 0 {
		}
	})
	eng.RunUntil(units.Time(5 * units.Second))
	sentAtStall := c.Sender.Endpoint().SndNxt()
	// Stalled: in-flight + receiver-held bytes bounded by rcvbuf (plus one
	// window of slack for the in-flight race).
	if sentAtStall > 2*256<<10+64<<10 {
		t.Fatalf("sender pushed %d bytes into a 256KiB receive buffer", sentAtStall)
	}
	eng.Schedule(0, func() { readCh.Broadcast() })
	eng.RunUntil(units.Time(15 * units.Second))
	eng.Shutdown()
	if got := c.Receiver.ReadCum(); got < 10<<20 {
		t.Fatalf("transfer did not resume after zero-window: read %d", got)
	}
}

func TestUploadDirectionProfile(t *testing.T) {
	// Sanity for asymmetric profiles: the reverse (ACK) path must not
	// bottleneck a download even when the uplink is 10x slower.
	eng := sim.New(35)
	p := netem.Cable
	path := p.Build(eng, netem.BuildOptions{Direction: netem.Download})
	net := NewNet(eng, path)
	c := Dial(net, ConnConfig{CC: cc.KindCubic})
	bulkSender(eng, c, 64<<10)
	promptReader(eng, c)
	eng.RunUntil(units.Time(20 * units.Second))
	eng.Shutdown()
	got := float64(c.Receiver.ReadCum()) * 8 / 20
	if got < 60e6 {
		t.Fatalf("download goodput %.1f Mbps on a 100 Mbps cable profile", got/1e6)
	}
}
