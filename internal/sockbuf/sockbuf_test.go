package sockbuf

import (
	"testing"
	"testing/quick"
)

func TestSendBufferFixedCap(t *testing.T) {
	b := NewSendBuffer(64<<10, 0)
	if b.Autotune() {
		t.Fatal("fixed buffer reports autotune")
	}
	if b.Cap() != 64<<10 {
		t.Fatalf("Cap = %d", b.Cap())
	}
	if got := b.Write(100 << 10); got != 64<<10 {
		t.Fatalf("Write accepted %d", got)
	}
	if b.Free() != 0 || b.Used() != 64<<10 {
		t.Fatalf("Free=%d Used=%d", b.Free(), b.Used())
	}
	b.Ack(10 << 10)
	if b.Free() != 10<<10 {
		t.Fatalf("Free after ack = %d", b.Free())
	}
	// Tune must be a no-op on pinned buffers.
	b.Tune(1 << 20)
	if b.Cap() != 64<<10 {
		t.Fatalf("pinned cap changed to %d", b.Cap())
	}
}

func TestSendBufferAutotuneGrowOnly(t *testing.T) {
	b := NewSendBuffer(0, 0)
	if !b.Autotune() {
		t.Fatal("autotune off by default")
	}
	start := b.Cap()
	b.Tune(100 << 10)
	if b.Cap() != AutotuneFactor*100<<10 {
		t.Fatalf("Cap after tune = %d", b.Cap())
	}
	// Shrinking cwnd must not shrink the buffer (grow-only, like Linux).
	b.Tune(10 << 10)
	if b.Cap() != AutotuneFactor*100<<10 {
		t.Fatalf("cap shrank to %d", b.Cap())
	}
	if start >= b.Cap() {
		t.Fatal("no growth")
	}
	// And it must respect the maximum.
	b.Tune(1 << 30)
	if b.Cap() != DefaultSndBufMax {
		t.Fatalf("cap above max: %d", b.Cap())
	}
}

func TestSendBufferSetCapFloor(t *testing.T) {
	b := NewSendBuffer(0, 0)
	b.SetCap(1)
	if b.Cap() != DefaultSndBufMin {
		t.Fatalf("Cap = %d, want floor %d", b.Cap(), DefaultSndBufMin)
	}
	if b.Autotune() {
		t.Fatal("SetCap did not disable autotune")
	}
}

func TestReceiveBufferWindow(t *testing.T) {
	rb := NewReceiveBuffer(1000)
	if rb.AdvertisedWindow(0) != 1000 {
		t.Fatalf("empty window = %d", rb.AdvertisedWindow(0))
	}
	if rb.AdvertisedWindow(400) != 600 {
		t.Fatalf("window = %d", rb.AdvertisedWindow(400))
	}
	if rb.AdvertisedWindow(2000) != 0 {
		t.Fatalf("overfull window = %d", rb.AdvertisedWindow(2000))
	}
	if NewReceiveBuffer(0).Cap() != DefaultRcvBufMax {
		t.Fatal("default capacity wrong")
	}
}

// Property: Used + Free == Cap at all times, and Write never accepts more
// than Free.
func TestPropertySendBufferInvariant(t *testing.T) {
	f := func(ops []uint16) bool {
		b := NewSendBuffer(32<<10, 0)
		var written, acked uint64
		for i, op := range ops {
			if i%2 == 0 {
				n := b.Write(int(op))
				if n > int(op) {
					return false
				}
				written += uint64(n)
			} else {
				acked += uint64(op)
				if acked > written {
					acked = written
				}
				b.Ack(acked)
			}
			if b.Used()+b.Free() != b.Cap() {
				return false
			}
			if b.Used() < 0 || b.Free() < 0 {
				return false
			}
		}
		return b.Written() == written
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
