// Package sockbuf models the socket send/receive buffers and Linux's
// buffer auto-tuning. The interaction between loss-based congestion control
// and the send-buffer auto-tuner — which grows the buffer to roughly twice
// the congestion window and never shrinks it — is the mechanism behind the
// multi-second sender-side delays the paper diagnoses (§2.1), so this
// package is deliberately faithful to that behaviour.
//
// Buffers carry byte *counts*, not payloads: the simulator never moves real
// data, only accounting.
package sockbuf

import "element/internal/telemetry"

// Linux-like defaults (net.ipv4.tcp_wmem / tcp_rmem).
const (
	// DefaultSndBufMin is the floor of the send buffer.
	DefaultSndBufMin = 4 << 10
	// DefaultSndBufInitial matches tcp_wmem[1] (16 KB rounded up).
	DefaultSndBufInitial = 16 << 10
	// DefaultSndBufMax matches tcp_wmem[2] (4 MB).
	DefaultSndBufMax = 4 << 20
	// DefaultRcvBufMax matches tcp_rmem[2] (6 MB).
	DefaultRcvBufMax = 6 << 20
	// AutotuneFactor is the sndbuf-to-cwnd ratio the tuner maintains: the
	// kernel sizes the buffer at about two congestion windows so that a
	// full window can be in flight while another is queued.
	AutotuneFactor = 2
)

// SendBuffer tracks the sender-side socket buffer occupancy: bytes the
// application has written that the peer has not yet acknowledged. The
// capacity bounds how far the writer may run ahead of acknowledgments,
// which is exactly the data that "waits" in the paper's title.
type SendBuffer struct {
	cap      int
	max      int
	autotune bool

	written uint64 // cumulative bytes accepted from the application
	acked   uint64 // cumulative bytes acknowledged by the peer

	// Telemetry handles (nil-safe no-ops when uninstrumented).
	telem         *telemetry.Scope
	writtenBytesC *telemetry.Counter
	resizesC      *telemetry.Counter
	capG          *telemetry.Gauge
	occupancyS    *telemetry.Sampler

	onResize func(from, to int) // capacity-change observer (nil = none)
}

// SetOnResize registers an observer invoked whenever the buffer capacity
// changes — auto-tune growth or an explicit SetCap. Attribution tools use it
// to mark capacity steps on the sndbuf residency track; nil disables it.
func (b *SendBuffer) SetOnResize(fn func(from, to int)) { b.onResize = fn }

// Instrument records the buffer's activity under sc: occupancy samples on
// write/ack, auto-tune resize events, and cumulative write counters.
func (b *SendBuffer) Instrument(sc *telemetry.Scope) {
	b.telem = sc
	b.writtenBytesC = sc.Counter("written_bytes")
	b.resizesC = sc.Counter("autotune_resizes")
	b.capG = sc.Gauge("sndbuf_cap_bytes")
	b.capG.Set(float64(b.cap))
	b.occupancyS = sc.Sampler("sndbuf", telemetry.DefaultSampleGap, "used_bytes", "cap_bytes")
}

// sampleOccupancy emits the occupancy time series point.
func (b *SendBuffer) sampleOccupancy() {
	if !b.occupancyS.Due() {
		return
	}
	b.occupancyS.SampleVals(float64(b.Used()), float64(b.cap))
}

// NewSendBuffer returns a send buffer. If fixedCap is zero the buffer
// starts at the Linux initial size and auto-tunes (grow-only) toward
// AutotuneFactor×cwnd, capped at max (0 = DefaultSndBufMax); a nonzero
// fixedCap disables auto-tuning, like setting SO_SNDBUF.
func NewSendBuffer(fixedCap, max int) *SendBuffer {
	if max == 0 {
		max = DefaultSndBufMax
	}
	if fixedCap > 0 {
		return &SendBuffer{cap: fixedCap, max: max}
	}
	return &SendBuffer{cap: DefaultSndBufInitial, max: max, autotune: true}
}

// Free reports how many more bytes the application may write.
func (b *SendBuffer) Free() int {
	used := int(b.written - b.acked)
	if used >= b.cap {
		return 0
	}
	return b.cap - used
}

// Used reports the occupancy in bytes (written but unacknowledged).
func (b *SendBuffer) Used() int { return int(b.written - b.acked) }

// Cap reports the current capacity.
func (b *SendBuffer) Cap() int { return b.cap }

// Autotune reports whether auto-tuning is active.
func (b *SendBuffer) Autotune() bool { return b.autotune }

// SetCap pins the capacity (SO_SNDBUF) and disables auto-tuning.
func (b *SendBuffer) SetCap(n int) {
	if n < DefaultSndBufMin {
		n = DefaultSndBufMin
	}
	old := b.cap
	b.cap = n
	b.autotune = false
	if b.onResize != nil && old != b.cap {
		b.onResize(old, b.cap)
	}
	if b.telem != nil {
		b.capG.Set(float64(b.cap))
		b.telem.Event(telemetry.SevInfo, "set_sndbuf", telemetry.F("cap_bytes", float64(b.cap)))
	}
}

// Write accepts up to n bytes and returns how many fit.
func (b *SendBuffer) Write(n int) int {
	free := b.Free()
	if n > free {
		n = free
	}
	if n > 0 {
		b.written += uint64(n)
		if b.telem != nil {
			b.writtenBytesC.Add(float64(n))
			b.sampleOccupancy()
		}
	}
	return n
}

// Written reports the cumulative bytes accepted from the application.
func (b *SendBuffer) Written() uint64 { return b.written }

// Ack records that the peer has acknowledged through cumAcked stream bytes,
// freeing buffer space.
func (b *SendBuffer) Ack(cumAcked uint64) {
	if cumAcked > b.acked {
		b.acked = cumAcked
		if b.telem != nil {
			b.sampleOccupancy()
		}
	}
}

// Tune applies the Linux send-buffer auto-tuning rule for the given
// congestion window (bytes): grow the capacity to AutotuneFactor×cwnd,
// never shrinking, up to the configured maximum. No-op when pinned.
func (b *SendBuffer) Tune(cwndBytes int) {
	if !b.autotune {
		return
	}
	want := AutotuneFactor * cwndBytes
	if want > b.max {
		want = b.max
	}
	if want > b.cap {
		old := b.cap
		b.cap = want
		if b.onResize != nil {
			b.onResize(old, b.cap)
		}
		if b.telem != nil {
			b.resizesC.Inc()
			b.capG.Set(float64(b.cap))
			b.telem.Event(telemetry.SevInfo, "autotune_resize",
				telemetry.F("from_bytes", float64(old)),
				telemetry.F("to_bytes", float64(b.cap)))
		}
	}
}

// ReceiveBuffer tracks the receiver-side buffer: bytes the TCP layer holds
// (in-order unread plus out-of-order) against a capacity that determines
// the advertised window.
type ReceiveBuffer struct {
	cap int
}

// NewReceiveBuffer returns a receive buffer with the given capacity
// (0 = DefaultRcvBufMax). Receive auto-tuning is approximated by starting
// at the maximum: the paper's receiver-side delays come from out-of-order
// waiting and slow readers, not from rwnd clamping.
func NewReceiveBuffer(capacity int) *ReceiveBuffer {
	if capacity == 0 {
		capacity = DefaultRcvBufMax
	}
	return &ReceiveBuffer{cap: capacity}
}

// Cap reports the capacity.
func (b *ReceiveBuffer) Cap() int { return b.cap }

// AdvertisedWindow reports the window to advertise given the bytes
// currently held by the TCP layer (unread in-order + out-of-order).
func (b *ReceiveBuffer) AdvertisedWindow(held int) int {
	if held >= b.cap {
		return 0
	}
	return b.cap - held
}
