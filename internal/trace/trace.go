// Package trace is the simulator's analogue of the paper's instrumented
// perf kernel profiler (§4.3): it observes the four decomposition points of
// Figure 1/5 — application write, TCP transmit (tcp_transmit_skb), TCP
// receive (tcp_v4_do_rcv), application read — with exact per-byte
// timestamps, and derives the ground-truth sender-side, network, and
// receiver-side delays that ELEMENT's user-level estimates are judged
// against.
package trace

import (
	"sort"

	"element/internal/sim"
	"element/internal/stack"
	"element/internal/stats"
	"element/internal/units"
)

// Sample and Series alias the shared statistics types so ground truth and
// ELEMENT's estimates compare directly.
type Sample = stats.Sample

// Series is an ordered collection of samples.
type Series = stats.Series

// rangeStamp is a byte range with the time it passed an observation point.
type rangeStamp struct {
	start, end uint64
	at         units.Time
}

// Collector accumulates ground truth for one connection. Create it with
// New and pass Hooks() into the connection's ConnConfig.
type Collector struct {
	eng *sim.Engine

	// Sender side: cumulative write records and transmission stamps.
	writes    []rangeStamp // app writes, contiguous, FIFO
	writeHead int
	transmits []rangeStamp // first transmissions, by start seq (sorted)

	// Receiver side: receive stamps awaiting app reads.
	receives []rangeStamp // sorted by start, disjoint
	readCum  uint64

	senderDelay   Series
	networkDelay  Series
	receiverDelay Series
}

// New returns an empty collector bound to eng.
func New(eng *sim.Engine) *Collector { return &Collector{eng: eng} }

// SenderHooks returns the trace hooks for the sending socket.
func (c *Collector) SenderHooks() stack.TraceHooks {
	return stack.TraceHooks{
		AppWrite:    c.onAppWrite,
		TCPTransmit: c.onTCPTransmit,
	}
}

// ReceiverHooks returns the trace hooks for the receiving socket.
func (c *Collector) ReceiverHooks() stack.TraceHooks {
	return stack.TraceHooks{
		TCPReceive: c.onTCPReceive,
		AppRead:    c.onAppRead,
	}
}

// onAppWrite records that the app stream now extends to endSeq.
func (c *Collector) onAppWrite(endSeq uint64, n int) {
	c.writes = append(c.writes, rangeStamp{end: endSeq, at: c.eng.Now()})
}

// onTCPTransmit matches a first transmission against the write records.
// Retransmissions update the network-delay bookkeeping but do not produce
// sender-delay samples (the bytes left the socket buffer at first
// transmission, like tcp_transmit_skb tracing does).
func (c *Collector) onTCPTransmit(seq uint64, n int, retx bool) {
	now := c.eng.Now()
	end := seq + uint64(n)
	c.recordTransmit(rangeStamp{start: seq, end: end, at: now})
	if retx {
		return
	}
	// Sender delay: time since the write call that produced the segment's
	// last byte (the paper matches the closest record not exceeding the
	// TCP-layer byte count; at ground-truth precision the covering write is
	// exact).
	for c.writeHead < len(c.writes) {
		w := c.writes[c.writeHead]
		if w.end >= end {
			c.senderDelay = append(c.senderDelay, Sample{At: now, Delay: now.Sub(w.at), Bytes: n})
			break
		}
		c.writeHead++
	}
	if c.writeHead > 256 && c.writeHead*2 >= len(c.writes) {
		m := copy(c.writes, c.writes[c.writeHead:])
		c.writes = c.writes[:m]
		c.writeHead = 0
	}
}

// recordTransmit keeps the FIRST transmission time per byte range. The
// paper measures network delay from the segment's first tcp_transmit_skb,
// so for a segment lost and retransmitted (after an RTO, say) the recovery
// wait counts as network delay rather than disappearing from the
// decomposition; the waterfall attribution splits the same interval into
// its retx and queue/wire stages.
func (c *Collector) recordTransmit(r rangeStamp) {
	i := sort.Search(len(c.transmits), func(i int) bool { return c.transmits[i].start >= r.start })
	if i < len(c.transmits) && c.transmits[i].start == r.start {
		return // retransmission: the first transmission's stamp stands
	}
	c.transmits = append(c.transmits, rangeStamp{})
	copy(c.transmits[i+1:], c.transmits[i:])
	c.transmits[i] = r
}

// onTCPReceive records arrival of new bytes and emits the network-delay
// sample measured from the first transmission of the covering segment.
func (c *Collector) onTCPReceive(seq uint64, n int) {
	now := c.eng.Now()
	end := seq + uint64(n)
	// Find the covering transmission: greatest start <= seq.
	i := sort.Search(len(c.transmits), func(i int) bool { return c.transmits[i].start > seq })
	if i > 0 {
		tx := c.transmits[i-1]
		c.networkDelay = append(c.networkDelay, Sample{At: now, Delay: now.Sub(tx.at), Bytes: n})
	}
	// Stash for the receiver-delay match at app-read time.
	c.receives = append(c.receives, rangeStamp{start: seq, end: end, at: now})
	sort.Slice(c.receives, func(a, b int) bool { return c.receives[a].start < c.receives[b].start })
	// Trim transmission records below the fully received prefix lazily.
	c.trimTransmits()
}

func (c *Collector) trimTransmits() {
	if len(c.receives) == 0 || len(c.transmits) < 4096 {
		return
	}
	low := c.receives[0].start
	i := sort.Search(len(c.transmits), func(i int) bool { return c.transmits[i].end > low })
	if i > 0 {
		c.transmits = append(c.transmits[:0], c.transmits[i:]...)
	}
}

// onAppRead matches consumed bytes against receive stamps.
func (c *Collector) onAppRead(endSeq uint64, n int) {
	now := c.eng.Now()
	c.readCum = endSeq
	for len(c.receives) > 0 && c.receives[0].start < endSeq {
		r := c.receives[0]
		if r.end <= endSeq {
			c.receiverDelay = append(c.receiverDelay, Sample{
				At: now, Delay: now.Sub(r.at), Bytes: int(r.end - r.start),
			})
			c.receives = c.receives[1:]
			continue
		}
		// Partially read range: split it.
		c.receiverDelay = append(c.receiverDelay, Sample{
			At: now, Delay: now.Sub(r.at), Bytes: int(endSeq - r.start),
		})
		c.receives[0].start = endSeq
		break
	}
}

// SenderDelay reports the ground-truth sender-side (socket buffer) delays.
func (c *Collector) SenderDelay() Series { return c.senderDelay }

// NetworkDelay reports the ground-truth one-way network delays.
func (c *Collector) NetworkDelay() Series { return c.networkDelay }

// ReceiverDelay reports the ground-truth receiver-side delays.
func (c *Collector) ReceiverDelay() Series { return c.receiverDelay }
