package trace

import (
	"math/rand"
	"sort"
	"testing"

	"element/internal/sim"
	"element/internal/units"
)

// propSchedule drives the collector's hooks directly with a seeded-random
// event schedule that includes out-of-order deliveries, duplicated and
// partially-overlapping receive stamps, and spurious re-transmissions —
// the stamp patterns a reordering or duplicating path (the faults package's
// reorder/flaky-path profiles) produces, but without a stack in between so
// the adversarial cases hit the bookkeeping unconditionally. It returns
// the collector after a final read that consumes the whole stream.
func propSchedule(t *testing.T, seed int64, steps int) *Collector {
	t.Helper()
	eng := sim.New(seed)
	rng := rand.New(rand.NewSource(seed))
	c := New(eng)

	eng.Spawn("driver", func(p *sim.Proc) {
		var (
			written uint64 // app stream extent
			txEnd   uint64 // transmitted prefix
			readCum uint64
			segs    []rangeStamp // transmitted segments, in seq order
			undeliv []int        // indices into segs not yet delivered
		)
		for i := 0; i < steps; i++ {
			p.Sleep(units.Duration(rng.Intn(2_000_001))) // 0..2ms
			switch action := rng.Intn(10); {
			case action < 3: // app write
				n := 1 + rng.Intn(3000)
				written += uint64(n)
				c.onAppWrite(written, n)
			case action < 6: // first transmission of the next chunk
				if txEnd >= written {
					continue
				}
				n := 1 + rng.Intn(1448)
				if uint64(n) > written-txEnd {
					n = int(written - txEnd)
				}
				c.onTCPTransmit(txEnd, n, false)
				segs = append(segs, rangeStamp{start: txEnd, end: txEnd + uint64(n)})
				undeliv = append(undeliv, len(segs)-1)
				txEnd += uint64(n)
			case action < 7: // re-transmission of a random old segment
				if len(segs) == 0 {
					continue
				}
				s := segs[rng.Intn(len(segs))]
				// Half flagged retx, half a spurious duplicate "first"
				// transmission: recordTransmit must keep the first stamp
				// either way.
				c.onTCPTransmit(s.start, int(s.end-s.start), rng.Intn(2) == 0)
			case action < 9: // out-of-order delivery, sometimes duplicated
				if len(undeliv) == 0 {
					continue
				}
				j := rng.Intn(len(undeliv))
				s := segs[undeliv[j]]
				switch rng.Intn(4) {
				case 0: // duplicate: deliver without retiring
				case 1: // overlapping fragment starting mid-segment
					if span := s.end - s.start; span > 1 {
						off := 1 + rng.Int63n(int64(span-1))
						c.onTCPReceive(s.start+uint64(off), int(s.end-s.start-uint64(off)))
					}
				default:
					undeliv = append(undeliv[:j], undeliv[j+1:]...)
				}
				c.onTCPReceive(s.start, int(s.end-s.start))
			default: // app read up to a random point in the transmitted prefix
				if txEnd <= readCum {
					continue
				}
				n := 1 + uint64(rng.Int63n(int64(txEnd-readCum)))
				readCum += n
				c.onAppRead(readCum, int(n))
			}
		}
		// Drain: deliver everything outstanding, then read the full stream.
		p.Sleep(units.Millisecond)
		for _, j := range undeliv {
			c.onTCPReceive(segs[j].start, int(segs[j].end-segs[j].start))
		}
		p.Sleep(units.Millisecond)
		if txEnd > readCum {
			c.onAppRead(txEnd, int(txEnd-readCum))
		}
	})
	eng.Run()
	return c
}

// checkSeries asserts the delay-sample invariants every consumer of the
// ground truth relies on: timestamps never go backwards, no negative
// delays, and every sample covers at least one byte.
func checkSeries(t *testing.T, name string, s Series) {
	t.Helper()
	var last units.Time
	for i, x := range s {
		if x.At < last {
			t.Fatalf("%s[%d]: timestamp %v before predecessor %v", name, i, x.At, last)
		}
		last = x.At
		if x.Delay < 0 {
			t.Fatalf("%s[%d]: negative delay %v", name, i, x.Delay)
		}
		if x.Bytes <= 0 {
			t.Fatalf("%s[%d]: non-positive byte count %d", name, i, x.Bytes)
		}
	}
}

// TestCollectorPropertyOutOfOrder is the satellite robustness check for
// the ground-truth collector: under randomized out-of-order, duplicated,
// and overlapping receive stamps it must not panic, must keep every series
// monotone in time with non-negative delays, and must account for at least
// the full stream once everything is read.
func TestCollectorPropertyOutOfOrder(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		c := propSchedule(t, seed, 2000)

		checkSeries(t, "senderDelay", c.senderDelay)
		checkSeries(t, "networkDelay", c.networkDelay)
		checkSeries(t, "receiverDelay", c.receiverDelay)

		// First-stamp-wins transmit records stay strictly sorted and
		// duplicate-free even under spurious re-transmissions.
		if !sort.SliceIsSorted(c.transmits, func(a, b int) bool {
			return c.transmits[a].start < c.transmits[b].start
		}) {
			t.Fatalf("seed %d: transmit records out of order", seed)
		}
		for i := 1; i < len(c.transmits); i++ {
			if c.transmits[i].start == c.transmits[i-1].start {
				t.Fatalf("seed %d: duplicate transmit record at seq %d", seed, c.transmits[i].start)
			}
		}

		// The final full read must pop every receive stamp — duplicates
		// included — or the matcher is leaking state.
		if len(c.receives) != 0 {
			t.Fatalf("seed %d: %d receive stamps left after full read (readCum %d, first start %d)",
				seed, len(c.receives), c.readCum, c.receives[0].start)
		}

		// Every read byte was covered by at least one receive stamp, so the
		// receiver-delay samples must account for the whole stream; with
		// duplicates they may exceed it, never undershoot.
		var rcvBytes uint64
		for _, x := range c.receiverDelay {
			rcvBytes += uint64(x.Bytes)
		}
		if rcvBytes < c.readCum {
			t.Fatalf("seed %d: receiver delay covers %d bytes < %d read", seed, rcvBytes, c.readCum)
		}
	}
}

// TestCollectorPropertyDeterministic pins the collector's schedule-driven
// output: identical seeds must reproduce identical series, byte for byte.
func TestCollectorPropertyDeterministic(t *testing.T) {
	a := propSchedule(t, 42, 1500)
	b := propSchedule(t, 42, 1500)
	same := func(name string, x, y Series) {
		if len(x) != len(y) {
			t.Fatalf("%s: %d vs %d samples across identical runs", name, len(x), len(y))
		}
		for i := range x {
			if x[i] != y[i] {
				t.Fatalf("%s[%d]: %+v vs %+v", name, i, x[i], y[i])
			}
		}
	}
	same("senderDelay", a.senderDelay, b.senderDelay)
	same("networkDelay", a.networkDelay, b.networkDelay)
	same("receiverDelay", a.receiverDelay, b.receiverDelay)
}
