package trace

import (
	"testing"

	"element/internal/cc"
	"element/internal/netem"
	"element/internal/sim"
	"element/internal/stack"
	"element/internal/units"
)

func TestSeriesStats(t *testing.T) {
	s := Series{
		{At: 0, Delay: 10 * units.Millisecond, Bytes: 100},
		{At: 1, Delay: 30 * units.Millisecond, Bytes: 100},
	}
	if got := s.Mean(); got != 20*units.Millisecond {
		t.Fatalf("Mean = %v", got)
	}
	if got := s.Stdev(); got != 10*units.Millisecond {
		t.Fatalf("Stdev = %v", got)
	}
}

func TestSeriesMeanByteWeighted(t *testing.T) {
	s := Series{
		{Delay: 10 * units.Millisecond, Bytes: 300},
		{Delay: 50 * units.Millisecond, Bytes: 100},
	}
	if got := s.Mean(); got != 20*units.Millisecond {
		t.Fatalf("Mean = %v, want 20ms", got)
	}
}

func TestSeriesAtInterpolates(t *testing.T) {
	s := Series{
		{At: units.Time(units.Second), Delay: 10 * units.Millisecond},
		{At: units.Time(3 * units.Second), Delay: 30 * units.Millisecond},
	}
	got, ok := s.At(units.Time(2 * units.Second))
	if !ok || got != 20*units.Millisecond {
		t.Fatalf("At(2s) = %v, %v", got, ok)
	}
	if got, _ := s.At(0); got != 10*units.Millisecond {
		t.Fatalf("At(before) = %v", got)
	}
	if got, _ := s.At(units.Time(10 * units.Second)); got != 30*units.Millisecond {
		t.Fatalf("At(after) = %v", got)
	}
	if _, ok := (Series{}).At(0); ok {
		t.Fatal("At on empty series returned ok")
	}
}

// buildFlow runs a bulk flow with a collector attached and returns it.
func buildFlow(t *testing.T, lossRate float64, dur units.Duration) *Collector {
	return buildFlowCC(t, cc.KindCubic, lossRate, dur)
}

func buildFlowCC(t *testing.T, kind cc.Kind, lossRate float64, dur units.Duration) *Collector {
	t.Helper()
	eng := sim.New(42)
	path := netem.NewPath(eng, netem.PathConfig{
		Forward: netem.LinkConfig{
			Rate: 10 * units.Mbps, Delay: 25 * units.Millisecond, LossRate: lossRate,
		},
		Reverse: netem.LinkConfig{Rate: 10 * units.Mbps, Delay: 25 * units.Millisecond},
	})
	net := stack.NewNet(eng, path)
	col := New(eng)
	c := stack.Dial(net, stack.ConnConfig{
		CC:            kind,
		SenderHooks:   col.SenderHooks(),
		ReceiverHooks: col.ReceiverHooks(),
	})
	eng.Spawn("writer", func(p *sim.Proc) {
		for c.Sender.Write(p, 16<<10) > 0 {
		}
	})
	eng.Spawn("reader", func(p *sim.Proc) {
		for c.Receiver.Read(p, 1<<20) > 0 {
		}
	})
	eng.RunUntil(units.Time(dur))
	eng.Shutdown()
	return col
}

func TestGroundTruthDecomposition(t *testing.T) {
	col := buildFlow(t, 0, 30*units.Second)

	nd := col.NetworkDelay()
	if len(nd) == 0 {
		t.Fatal("no network delay samples")
	}
	// One-way network delay ≥ propagation (25 ms). The upper bound is prop +
	// full queue (1000 pkts ≈ 1.23 s) plus loss recovery: network delay is
	// measured from the FIRST transmission (paper convention), so a segment
	// tail-dropped by the deep FIFO and fast-retransmitted carries the
	// recovery wait (up to ~an RTT + another queue traversal, more after an
	// RTO) in its sample.
	for _, s := range nd {
		if s.Delay < 25*units.Millisecond {
			t.Fatalf("network delay %v below propagation", s.Delay)
		}
		if s.Delay > 5*units.Second {
			t.Fatalf("network delay %v beyond queue capacity plus loss recovery", s.Delay)
		}
	}

	sd := col.SenderDelay()
	if len(sd) == 0 {
		t.Fatal("no sender delay samples")
	}
	// The paper's core observation: with buffer auto-tuning and Cubic, the
	// send-buffer delay dominates and reaches seconds.
	if sd.Mean() < 500*units.Millisecond {
		t.Fatalf("mean sender delay %v — bufferbloat not reproduced", sd.Mean())
	}

	rd := col.ReceiverDelay()
	if len(rd) == 0 {
		t.Fatal("no receiver delay samples")
	}
	// Receiver-side delay exists (out-of-order waits after congestion
	// drops) but must remain well below the sender-side delay — the
	// paper's Figure 2 ordering.
	if rd.Mean() >= sd.Mean()/3 {
		t.Fatalf("receiver delay %v not ≪ sender delay %v", rd.Mean(), sd.Mean())
	}
}

func TestReceiverDelayGrowsWithLoss(t *testing.T) {
	// Vegas keeps the bottleneck queue tiny, so the only source of
	// receiver-side delay is head-of-line blocking after random loss.
	noLoss := buildFlowCC(t, cc.KindVegas, 0, 20*units.Second)
	withLoss := buildFlowCC(t, cc.KindVegas, 0.02, 20*units.Second)
	a := noLoss.ReceiverDelay().Mean()
	b := withLoss.ReceiverDelay().Mean()
	if a > 5*units.Millisecond {
		t.Fatalf("Vegas receiver delay without loss = %v, want ≈ 0", a)
	}
	if b <= a*2 || b < 5*units.Millisecond {
		t.Fatalf("receiver delay with loss %v not ≫ without %v", b, a)
	}
}

func TestSenderDelayMatchesOccupancyLaw(t *testing.T) {
	// With a pinned small send buffer, the sender delay must stay below
	// roughly buffer/throughput.
	eng := sim.New(7)
	path := netem.NewPath(eng, netem.PathConfig{
		Forward: netem.LinkConfig{Rate: 10 * units.Mbps, Delay: 25 * units.Millisecond},
		Reverse: netem.LinkConfig{Rate: 10 * units.Mbps, Delay: 25 * units.Millisecond},
	})
	net := stack.NewNet(eng, path)
	col := New(eng)
	c := stack.Dial(net, stack.ConnConfig{
		CC:            cc.KindCubic,
		SndBuf:        64 << 10,
		SenderHooks:   col.SenderHooks(),
		ReceiverHooks: col.ReceiverHooks(),
	})
	eng.Spawn("writer", func(p *sim.Proc) {
		for c.Sender.Write(p, 16<<10) > 0 {
		}
	})
	eng.Spawn("reader", func(p *sim.Proc) {
		for c.Receiver.Read(p, 1<<20) > 0 {
		}
	})
	eng.RunUntil(units.Time(20 * units.Second))
	eng.Shutdown()
	// 64 KiB at 10 Mbps ≈ 52 ms ceiling (plus scheduling slack).
	if got := col.SenderDelay().Mean(); got > 120*units.Millisecond {
		t.Fatalf("sender delay %v with 64KiB pinned buffer", got)
	}
}

func TestConservationAcrossLayers(t *testing.T) {
	col := buildFlow(t, 0.01, 20*units.Second)
	var wrote, read int
	for _, s := range col.senderDelay {
		wrote += s.Bytes
	}
	for _, s := range col.receiverDelay {
		read += s.Bytes
	}
	if read > wrote {
		t.Fatalf("read %d bytes > first-transmitted %d", read, wrote)
	}
	if read == 0 {
		t.Fatal("nothing read")
	}
}
