// Package udplow implements simplified versions of the UDP-based
// low-latency transport protocols the paper compares against in Figure 16:
//
//   - Sprout (Winstein et al., NSDI'13): the receiver forecasts the link's
//     delivery rate and the sender transmits only as much as can drain
//     within a fixed delay budget, with a conservative (lower-percentile)
//     forecast. Very low delay, deliberately cautious utilization.
//   - Verus (Zaki et al., SIGCOMM'15): a delay-profile protocol that maps
//     the observed queueing delay to a sending window, incrementing the
//     window while delay is below a threshold and multiplicatively backing
//     off above it.
//
// Both are reduced to their control laws; framing, FEC and forecasting
// details are abstracted away. What Figure 16 needs is their qualitative
// trade-off — minimal self-inflicted queueing at the cost of throughput —
// and that is exactly what the control laws produce.
package udplow

import (
	"element/internal/pkt"
	"element/internal/sim"
	"element/internal/stack"
	"element/internal/stats"
	"element/internal/units"
)

// datagramSize is the UDP payload per packet.
const datagramSize = 1400

// feedbackInterval is how often the receiver reports back.
const feedbackInterval = 20 * units.Millisecond

// dgram is the protocol payload carried in packets.
type dgram struct {
	seq    int
	sentAt units.Time
}

// feedback is the receiver's periodic report.
type feedback struct {
	received   int            // datagrams received so far
	deliveryBW units.Rate     // delivery rate over the last interval
	qdelay     units.Duration // EWMA one-way delay above the observed floor
}

// Flow is one UDP low-latency flow: a paced sender at A driven by receiver
// feedback from B.
type Flow struct {
	name   string
	eng    *sim.Engine
	net    *stack.Net
	flowID int

	// Control law, invoked on each feedback packet: returns the new
	// sending rate.
	control func(fb feedback) units.Rate

	rate    units.Rate
	nextSeq int
	timer   *sim.Timer
	stopped bool

	// Receiver state.
	received     int
	lastCount    int
	lastFbAt     units.Time
	minOneWay    units.Duration
	qdelayEWMA   units.Duration
	delaySamples stats.Series
	fbTimer      *sim.Timer
}

// newFlow wires the sender, receiver and feedback loop.
func newFlow(name string, net *stack.Net, control func(*Flow, feedback) units.Rate, initial units.Rate) *Flow {
	f := &Flow{
		name:   name,
		eng:    net.Engine(),
		net:    net,
		flowID: net.AllocProbeFlowID(),
		rate:   initial,
	}
	f.control = func(fb feedback) units.Rate { return control(f, fb) }

	// Receiver at B: record delays, periodically send feedback.
	net.RegisterB(f.flowID, func(q *pkt.Packet) {
		d, ok := q.Payload.(dgram)
		if !ok {
			return
		}
		now := f.eng.Now()
		oneWay := now.Sub(d.sentAt)
		if f.minOneWay == 0 || oneWay < f.minOneWay {
			f.minOneWay = oneWay
		}
		qd := oneWay - f.minOneWay
		if f.qdelayEWMA == 0 {
			f.qdelayEWMA = qd
		} else {
			f.qdelayEWMA = f.qdelayEWMA*7/8 + qd/8
		}
		f.received++
		f.delaySamples = append(f.delaySamples, stats.Sample{
			At: now, Delay: oneWay, Bytes: q.PayloadLen,
		})
	})

	// Sender at A: receive feedback, re-run the control law.
	net.RegisterA(f.flowID, func(q *pkt.Packet) {
		fb, ok := q.Payload.(feedback)
		if !ok {
			return
		}
		f.rate = f.control(fb)
		if f.rate < 50*units.Kbps {
			f.rate = 50 * units.Kbps // keep probing minimally
		}
	})

	f.scheduleSend()
	f.scheduleFeedback()
	return f
}

// scheduleSend paces datagrams at the current rate.
func (f *Flow) scheduleSend() {
	if f.stopped {
		return
	}
	gap := f.rate.TransmissionTime(datagramSize + pkt.DefaultHeaderLen)
	f.timer = f.eng.Schedule(gap, func() {
		if f.stopped {
			return
		}
		f.nextSeq++
		now := f.eng.Now()
		f.net.Path().SendAtoB(&pkt.Packet{
			FlowID:     f.flowID,
			PayloadLen: datagramSize,
			HeaderLen:  pkt.DefaultHeaderLen,
			SentAt:     now,
			Payload:    dgram{seq: f.nextSeq, sentAt: now},
		})
		f.scheduleSend()
	})
}

// scheduleFeedback emits the receiver report every feedbackInterval.
func (f *Flow) scheduleFeedback() {
	f.fbTimer = f.eng.Schedule(feedbackInterval, func() {
		if f.stopped {
			return
		}
		now := f.eng.Now()
		elapsed := now.Sub(f.lastFbAt)
		var bw units.Rate
		if elapsed > 0 {
			bw = units.Rate(float64((f.received-f.lastCount)*datagramSize*8) / elapsed.Seconds())
		}
		f.lastCount = f.received
		f.lastFbAt = now
		f.net.Path().SendBtoA(&pkt.Packet{
			FlowID:    f.flowID,
			Flags:     pkt.FlagACK,
			HeaderLen: pkt.DefaultHeaderLen,
			Payload: feedback{
				received: f.received, deliveryBW: bw, qdelay: f.qdelayEWMA,
			},
		})
		f.scheduleFeedback()
	})
}

// Name reports the protocol name.
func (f *Flow) Name() string { return f.name }

// Delays reports the per-datagram one-way delays observed at the receiver.
func (f *Flow) Delays() stats.Series { return f.delaySamples }

// ReceivedBytes reports the bytes delivered so far.
func (f *Flow) ReceivedBytes() int { return f.received * datagramSize }

// Stop halts the flow.
func (f *Flow) Stop() {
	f.stopped = true
	for _, t := range []*sim.Timer{f.timer, f.fbTimer} {
		if t != nil {
			t.Stop()
		}
	}
}

// Sprout's tick budget: drain everything within this horizon.
const sproutBudget = 100 * units.Millisecond

// NewSprout starts a Sprout-like flow. The control law sends at the
// conservative fraction of the forecast delivery rate, reduced further by
// however much standing delay has built up relative to the 100 ms budget.
func NewSprout(net *stack.Net) *Flow {
	ewmaBW := units.Rate(0)
	return newFlow("sprout", net, func(f *Flow, fb feedback) units.Rate {
		if fb.deliveryBW > 0 {
			if ewmaBW == 0 {
				ewmaBW = fb.deliveryBW
			} else {
				ewmaBW = 0.875*ewmaBW + 0.125*fb.deliveryBW
			}
		}
		// Conservative forecast (the "95%-certain" lower bound): half the
		// smoothed delivery rate, scaled down linearly as the standing
		// queue eats into the 100 ms budget.
		headroom := 1 - fb.qdelay.Seconds()/sproutBudget.Seconds()
		if headroom < 0 {
			headroom = 0
		}
		return units.Rate(0.5 * float64(ewmaBW) * headroom)
	}, 2*units.Mbps)
}

// Verus parameters for the simplified delay-profile law.
const (
	verusDelayTarget = 50 * units.Millisecond
	verusBackoff     = 0.7
	verusStep        = 200 * units.Kbps
)

// NewVerus starts a Verus-like flow: additive rate increase while the
// observed queueing delay is under the target, multiplicative decrease
// above it — the essence of Verus's delay-profile window adjustment.
func NewVerus(net *stack.Net) *Flow {
	return newFlow("verus", net, func(f *Flow, fb feedback) units.Rate {
		if fb.qdelay < verusDelayTarget {
			return f.rate + verusStep
		}
		return units.Rate(float64(f.rate) * verusBackoff)
	}, 2*units.Mbps)
}
