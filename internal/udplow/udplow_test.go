package udplow

import (
	"testing"

	"element/internal/aqm"
	"element/internal/netem"
	"element/internal/sim"
	"element/internal/stack"
	"element/internal/units"
)

// sfqNet builds a 12 Mbps path with per-flow (SFQ) buffering, the setting
// of the paper's Figure 16 comparison.
func sfqNet(seed int64) (*sim.Engine, *stack.Net) {
	eng := sim.New(seed)
	path := netem.NewPath(eng, netem.PathConfig{
		Forward: netem.LinkConfig{
			Rate:       12 * units.Mbps,
			Delay:      25 * units.Millisecond,
			Discipline: aqm.NewSFQ(aqm.Config{}),
		},
		Reverse: netem.LinkConfig{Rate: 12 * units.Mbps, Delay: 25 * units.Millisecond},
	})
	return eng, stack.NewNet(eng, path)
}

func runWithBackground(t *testing.T, mk func(*stack.Net) *Flow) (*Flow, []float64) {
	t.Helper()
	eng, net := sfqNet(7)
	var backgroundBytes []func() uint64
	for i := 0; i < 2; i++ {
		c := stack.Dial(net, stack.ConnConfig{})
		eng.Spawn("bg-writer", func(p *sim.Proc) {
			for c.Sender.Write(p, 16<<10) > 0 {
			}
		})
		eng.Spawn("bg-reader", func(p *sim.Proc) {
			for c.Receiver.Read(p, 1<<20) > 0 {
			}
		})
		backgroundBytes = append(backgroundBytes, c.Receiver.ReadCum)
	}
	f := mk(net)
	const dur = 60 * units.Second
	eng.RunUntil(units.Time(dur))
	f.Stop()
	eng.Shutdown()
	rates := []float64{
		float64(f.ReceivedBytes()) * 8 / dur.Seconds(),
		float64(backgroundBytes[0]()) * 8 / dur.Seconds(),
		float64(backgroundBytes[1]()) * 8 / dur.Seconds(),
	}
	return f, rates
}

func TestSproutLowDelayLowShare(t *testing.T) {
	f, rates := runWithBackground(t, NewSprout)
	if len(f.Delays()) == 0 {
		t.Fatal("no delay samples")
	}
	// One-way delay should stay near the 25 ms propagation floor, far
	// below the budget.
	if m := f.Delays().Mean(); m > 150*units.Millisecond {
		t.Fatalf("sprout mean one-way delay %v", m)
	}
	// Throughput well below the 4 Mbps fair share: conservative by design.
	fair := 12e6 / 3
	if rates[0] > 0.8*fair {
		t.Fatalf("sprout rate %.2f Mbps suspiciously close to fair share", rates[0]/1e6)
	}
	if rates[0] < 0.1e6 {
		t.Fatalf("sprout starved entirely: %.2f Mbps", rates[0]/1e6)
	}
}

func TestVerusLowDelayModestShare(t *testing.T) {
	f, rates := runWithBackground(t, NewVerus)
	if m := f.Delays().Mean(); m > 200*units.Millisecond {
		t.Fatalf("verus mean one-way delay %v", m)
	}
	if rates[0] < 0.1e6 {
		t.Fatalf("verus starved: %.2f Mbps", rates[0]/1e6)
	}
}

func TestBackgroundFlowsUnharmed(t *testing.T) {
	// The conservative UDP flow must leave the Cubic background flows
	// with at least their fair share.
	_, rates := runWithBackground(t, NewSprout)
	fair := 12e6 / 3
	for _, r := range rates[1:] {
		if r < 0.8*fair {
			t.Fatalf("background flow got %.2f Mbps < fair share", r/1e6)
		}
	}
}

func TestVerusBacksOffAboveTarget(t *testing.T) {
	eng, net := sfqNet(9)
	f := NewVerus(net)
	// Force high observed queueing delay and run one control step.
	r0 := f.rate
	f.rate = f.control(feedback{qdelay: 200 * units.Millisecond})
	if f.rate >= r0 {
		t.Fatalf("verus did not back off: %v -> %v", r0, f.rate)
	}
	r1 := f.rate
	f.rate = f.control(feedback{qdelay: 0})
	if f.rate <= r1 {
		t.Fatalf("verus did not grow under low delay")
	}
	f.Stop()
	eng.Shutdown()
}
