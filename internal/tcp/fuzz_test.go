package tcp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"element/internal/cc"
	"element/internal/pkt"
	"element/internal/sim"
	"element/internal/units"
)

// TestPropertySenderSurvivesArbitraryAcks throws randomized (possibly
// nonsensical) ACK/SACK sequences at a sender and checks the structural
// invariants: snd_una never regresses or passes snd_nxt, packets_out is
// never negative, the pipe estimate never exceeds outstanding bytes, and
// nothing panics.
func TestPropertySenderSurvivesArbitraryAcks(t *testing.T) {
	f := func(seed int64, script []uint32) bool {
		rng := rand.New(rand.NewSource(seed))
		eng := sim.New(seed)
		sent := 0
		ep := New(eng, Config{
			FlowID: 1,
			CC:     cc.MustNew(cc.KindCubic, DefaultMSS, rng),
			Out:    func(p *pkt.Packet) { sent++ },
		})
		ep.SetAvailable(1 << 30)
		prevUna := uint64(0)
		for _, op := range script {
			eng.RunFor(units.Duration(op%20) * units.Millisecond)
			ackBase := uint64(op) * 37 % (ep.SndNxt() + 3*DefaultMSS + 1)
			p := &pkt.Packet{Flags: pkt.FlagACK, Ack: ackBase, Wnd: int(op%1000)*1000 + 1}
			if op%3 == 0 {
				start := uint64(op) * 91 % (ep.SndNxt() + 1)
				end := start + uint64(op%7)*DefaultMSS
				p.Sack = append(p.Sack, pkt.Range{Start: start, End: end})
			}
			if op%17 == 0 {
				p.ECE = true
			}
			ep.HandleAck(p)

			if ep.SndUna() < prevUna {
				return false // cumulative ack regressed
			}
			prevUna = ep.SndUna()
			if ep.SndUna() > ep.SndNxt() {
				return false
			}
			if ep.packetsOut() < 0 {
				return false
			}
			// A mid-segment (unaligned) ACK leaves the partially-acked head
			// segment counted whole, so allow one MSS of slack.
			if ep.pipe() < 0 || ep.pipe() > int(ep.SndNxt()-ep.SndUna())+DefaultMSS {
				return false
			}
		}
		ep.Close()
		eng.Shutdown()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyReceiverSurvivesArbitrarySegments injects random (overlapping,
// duplicate, out-of-range) data segments and checks reassembly invariants.
func TestPropertyReceiverSurvivesArbitrarySegments(t *testing.T) {
	f := func(seed int64, script []uint32) bool {
		eng := sim.New(seed)
		var reported uint64
		ep := New(eng, Config{
			FlowID:       1,
			Out:          func(p *pkt.Packet) {},
			OnReceiveNew: func(seq uint64, n int) { reported += uint64(n) },
		})
		for _, op := range script {
			eng.RunFor(units.Duration(op%10) * units.Millisecond)
			seq := uint64(op) * 53 % (64 * DefaultMSS)
			n := int(op%3)*700 + 100
			ep.HandleData(&pkt.Packet{FlowID: 1, Seq: seq, PayloadLen: n})

			// Invariants: readable ≤ rcvNxt; ooo intervals sorted, disjoint,
			// strictly above rcvNxt; reported bytes ≥ rcvNxt (every
			// contiguous byte was reported exactly once — uniqueness is
			// checked elsewhere; here we check coverage).
			if uint64(ep.ReadableBytes()) > ep.RcvNxt() {
				return false
			}
			prevEnd := ep.RcvNxt()
			for _, iv := range ep.ooo {
				if iv.start < prevEnd || iv.end <= iv.start {
					return false
				}
				prevEnd = iv.end
			}
			if reported < ep.RcvNxt() {
				return false
			}
		}
		ep.Close()
		eng.Shutdown()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
