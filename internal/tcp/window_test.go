package tcp

import (
	"testing"

	"element/internal/pkt"
	"element/internal/sim"
	"element/internal/sockbuf"
	"element/internal/units"
)

func TestWindowUpdateAfterZeroWindow(t *testing.T) {
	eng := sim.New(1)
	var acks []*pkt.Packet
	rb := sockbuf.NewReceiveBuffer(4 * DefaultMSS)
	ep := New(eng, Config{
		FlowID: 1,
		RcvBuf: rb,
		Out:    func(p *pkt.Packet) { acks = append(acks, p) },
	})
	// Fill the receive buffer completely: the last ACK advertises 0.
	for i := 0; i < 4; i++ {
		ep.HandleData(&pkt.Packet{FlowID: 1, Seq: uint64(i * DefaultMSS), PayloadLen: DefaultMSS})
	}
	eng.RunFor(100 * units.Millisecond) // flush delayed acks
	if last := acks[len(acks)-1]; last.Wnd != 0 {
		t.Fatalf("full buffer advertised window %d, want 0", last.Wnd)
	}
	before := len(acks)
	// App reads everything: a window-update ACK must go out immediately.
	ep.Consume(4 * DefaultMSS)
	if len(acks) != before+1 {
		t.Fatalf("no window update after read (acks %d -> %d)", before, len(acks))
	}
	if upd := acks[len(acks)-1]; upd.Wnd < 2*DefaultMSS {
		t.Fatalf("window update advertises %d", upd.Wnd)
	}
	ep.Close()
	eng.Shutdown()
}

func TestNoSpuriousWindowUpdates(t *testing.T) {
	eng := sim.New(1)
	var acks []*pkt.Packet
	ep := New(eng, Config{
		FlowID: 1,
		Out:    func(p *pkt.Packet) { acks = append(acks, p) },
	})
	// Plenty of buffer: reads must not generate extra ACKs.
	ep.HandleData(&pkt.Packet{FlowID: 1, Seq: 0, PayloadLen: DefaultMSS})
	eng.RunFor(100 * units.Millisecond)
	before := len(acks)
	ep.Consume(DefaultMSS)
	if len(acks) != before {
		t.Fatalf("spurious window update: %d -> %d", before, len(acks))
	}
	ep.Close()
	eng.Shutdown()
}
