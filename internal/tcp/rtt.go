package tcp

import "element/internal/units"

// RTO bounds. Linux uses a 200 ms minimum RTO (not RFC 6298's 1 s), which
// matters for the latency experiments, so we follow Linux.
const (
	minRTO = 200 * units.Millisecond
	maxRTO = 60 * units.Second
)

// rttEstimator implements RFC 6298 smoothed RTT / RTO computation.
type rttEstimator struct {
	srtt   units.Duration
	rttvar units.Duration
	rto    units.Duration
	init   bool
}

func newRTTEstimator() rttEstimator {
	return rttEstimator{rto: units.Second} // initial RTO before any sample
}

// sample feeds one RTT measurement.
func (r *rttEstimator) sample(m units.Duration) {
	if m <= 0 {
		return
	}
	if !r.init {
		r.init = true
		r.srtt = m
		r.rttvar = m / 2
	} else {
		d := r.srtt - m
		if d < 0 {
			d = -d
		}
		r.rttvar = (3*r.rttvar + d) / 4
		r.srtt = (7*r.srtt + m) / 8
	}
	r.rto = r.srtt + 4*r.rttvar
	r.clamp()
}

// backoff doubles the RTO (exponential backoff on RTO expiry).
func (r *rttEstimator) backoff() {
	r.rto *= 2
	r.clamp()
}

func (r *rttEstimator) clamp() {
	if r.rto < minRTO {
		r.rto = minRTO
	}
	if r.rto > maxRTO {
		r.rto = maxRTO
	}
}
