// Package tcp implements a segment-level TCP machine: congestion-window and
// receiver-window limited transmission, RFC 6298 RTO with exponential
// backoff, NewReno-style fast retransmit/recovery on three duplicate ACKs,
// receiver-side reassembly with an out-of-order queue, delayed ACKs, ECN
// echo, and optional pacing (for BBR).
//
// Payloads are never materialized: segments carry byte counts and sequence
// numbers only, which is sufficient for every delay and throughput
// behaviour the paper studies.
package tcp

import (
	"element/internal/cc"
	"element/internal/pkt"
	"element/internal/sim"
	"element/internal/sockbuf"
	"element/internal/tcpinfo"
	"element/internal/telemetry"
	"element/internal/units"
)

// DefaultMSS is the segment payload size (1460 payload + 40 header = 1500
// on the wire).
const DefaultMSS = 1460

// delayedAckTimeout matches Linux's delayed-ACK timer.
const delayedAckTimeout = 40 * units.Millisecond

// Config configures an Endpoint.
type Config struct {
	// FlowID tags every packet this endpoint emits.
	FlowID int
	// MSS is the maximum segment size (payload bytes); 0 = DefaultMSS.
	MSS int
	// CC is the congestion-control algorithm (required for senders).
	CC cc.Algorithm
	// ECN negotiates ECN: data packets are sent ECT and CE marks are
	// echoed back as ECE.
	ECN bool
	// Out transmits a packet toward the peer (required).
	Out func(*pkt.Packet)
	// RcvBuf is the receive buffer (nil = default capacity).
	RcvBuf *sockbuf.ReceiveBuffer

	// OnAcked fires when snd_una advances (socket layer: wake writers,
	// run send-buffer auto-tuning).
	OnAcked func()
	// OnReadable fires when new in-order bytes become readable.
	OnReadable func()
	// OnTransmit is the ground-truth trace hook at the paper's
	// tcp_transmit_skb point (first transmissions and retransmissions).
	OnTransmit func(seq uint64, n int, retx bool)
	// OnReceiveNew is the ground-truth trace hook at the tcp_v4_do_rcv
	// point; it reports byte ranges never seen before (duplicates from
	// spurious retransmissions are filtered out).
	OnReceiveNew func(seq uint64, n int)
	// OnInOrder fires whenever rcv_nxt advances, with the new cumulative
	// in-order offset — the moment out-of-order bytes leave the reassembly
	// queue and become readable. Fires after OnReceiveNew for the same
	// segment.
	OnInOrder func(cum uint64)
	// Telem records this endpoint's transport events (retransmissions, RTO
	// fires, duplicate ACKs, out-of-order queue depth, delayed ACKs, SRTT
	// samples). Nil disables instrumentation at zero cost.
	Telem *telemetry.Scope
}

// telem bundles the endpoint's metric handles, resolved once at New.
type telem struct {
	sc          *telemetry.Scope
	retransC    *telemetry.Counter
	rtoC        *telemetry.Counter
	dupAckC     *telemetry.Counter
	delayedAckC *telemetry.Counter
	oooBytesG   *telemetry.Gauge
	srttH       *telemetry.Histogram
	srttS       *telemetry.Sampler
	oooS        *telemetry.Sampler
}

// sentSeg records one transmitted, not-yet-acknowledged segment and its
// SACK scoreboard state (RFC 6675).
type sentSeg struct {
	seq    uint64
	end    uint64
	sentAt units.Time
	retxAt units.Time // time of the latest retransmission (0 = none)
	gen    int        // retransmission generation (0 = only the first send)
	retx   bool       // ever retransmitted (Karn: no RTT sample)
	sacked bool       // selectively acknowledged by the receiver
	lost   bool       // deemed lost by the FACK rule; retransmit when possible
	queued bool       // lost and not yet retransmitted since marked
}

// interval is a half-open byte range [start, end) in the out-of-order queue.
type interval struct{ start, end uint64 }

// Endpoint is one side of a TCP connection.
type Endpoint struct {
	eng *sim.Engine
	cfg Config
	mss int

	// Sender state.
	appLimit  uint64 // stream bytes the app has made available
	sndUna    uint64
	sndNxt    uint64
	rwnd      int
	sent      []sentSeg // live (unacked) segments, FIFO
	sentHead  int
	dupAcks   int
	inRecov   bool
	recover   uint64
	rtt       rttEstimator
	rtoTimer  *sim.Timer
	paceTimer *sim.Timer
	nextSend  units.Time // earliest next transmission when pacing

	// Receiver state.
	rcvNxt      uint64
	appConsumed uint64
	ooo         []interval
	oooBytes    int
	rcvBuf      *sockbuf.ReceiveBuffer
	lastArrival interval // most recent out-of-order arrival (first SACK block, RFC 2018)
	lastAdvWnd  int      // last advertised window (for window updates)
	unackedSegs int      // data segments since last ACK (delayed-ACK state)
	ackTimer    *sim.Timer
	echoECE     bool

	// Counters for TCP_INFO.
	segsIn       int
	segsOut      int
	totalRetrans int
	closed       bool

	tm *telem // nil unless Config.Telem was set
}

// New creates an endpoint on eng.
func New(eng *sim.Engine, cfg Config) *Endpoint {
	if cfg.MSS == 0 {
		cfg.MSS = DefaultMSS
	}
	rb := cfg.RcvBuf
	if rb == nil {
		rb = sockbuf.NewReceiveBuffer(0)
	}
	e := &Endpoint{
		eng:        eng,
		cfg:        cfg,
		mss:        cfg.MSS,
		rwnd:       rb.Cap(), // assume a symmetric peer before the first ACK
		rcvBuf:     rb,
		lastAdvWnd: rb.Cap(),
		rtt:        newRTTEstimator(),
	}
	if cfg.Telem != nil {
		e.tm = &telem{
			sc:          cfg.Telem,
			retransC:    cfg.Telem.Counter("retransmits"),
			rtoC:        cfg.Telem.Counter("rto_fires"),
			dupAckC:     cfg.Telem.Counter("dup_acks"),
			delayedAckC: cfg.Telem.Counter("delayed_acks"),
			oooBytesG:   cfg.Telem.Gauge("ooo_bytes"),
			srttH:       cfg.Telem.Histogram("srtt_seconds"),
			srttS:       cfg.Telem.Sampler("srtt", telemetry.DefaultSampleGap, "seconds"),
			oooS:        cfg.Telem.Sampler("ooo_queue", telemetry.DefaultSampleGap, "bytes", "ranges"),
		}
	}
	return e
}

// MSS reports the segment size.
func (e *Endpoint) MSS() int { return e.mss }

// --- Sender side ---------------------------------------------------------

// SetAvailable tells the sender that the application stream now extends to
// cum bytes; the endpoint transmits as the windows allow.
func (e *Endpoint) SetAvailable(cum uint64) {
	if cum > e.appLimit {
		e.appLimit = cum
		e.trySend()
	}
}

// SndUna reports the cumulative acknowledged bytes.
func (e *Endpoint) SndUna() uint64 { return e.sndUna }

// SndNxt reports the next sequence number to transmit.
func (e *Endpoint) SndNxt() uint64 { return e.sndNxt }

// packetsOut reports the number of in-flight segments (tcpi_unacked).
func (e *Endpoint) packetsOut() int { return len(e.sent) - e.sentHead }

// pipe estimates the bytes currently in flight per the RFC 6675 pipe
// algorithm: transmitted, not SACKed, and (unless retransmitted) not lost.
func (e *Endpoint) pipe() int {
	n := 0
	for i := e.sentHead; i < len(e.sent); i++ {
		s := &e.sent[i]
		if s.sacked {
			continue
		}
		if s.lost && s.queued {
			continue // lost and its retransmission not out yet
		}
		n += int(s.end - s.seq)
	}
	return n
}

// nextLost returns the first segment queued for (re)transmission by loss
// recovery.
func (e *Endpoint) nextLost() *sentSeg {
	for i := e.sentHead; i < len(e.sent); i++ {
		if e.sent[i].lost && e.sent[i].queued {
			return &e.sent[i]
		}
	}
	return nil
}

// trySend transmits retransmissions and new data as the congestion and
// receive windows (and the pacing rate, if any) allow.
func (e *Endpoint) trySend() {
	if e.cfg.CC == nil || e.closed {
		return
	}
	for {
		wnd := e.cfg.CC.CwndBytes()
		if e.rwnd < wnd {
			wnd = e.rwnd
		}
		if e.pipe() >= wnd {
			return // window-limited
		}
		// Loss retransmissions take priority over new data.
		seg := e.nextLost()
		var n int
		if seg == nil {
			if e.sndNxt >= e.appLimit {
				return // app-limited
			}
			n = e.segSize()
		} else {
			n = int(seg.end - seg.seq)
		}
		if rate := e.cfg.CC.PacingRate(); rate > 0 {
			now := e.eng.Now()
			if now < e.nextSend {
				e.armPaceTimer()
				return
			}
			e.nextSend = now.Add(rate.TransmissionTime(n + pkt.DefaultHeaderLen))
		}
		if seg != nil {
			seg.queued = false
			e.transmit(seg.seq, n, true)
		} else {
			e.transmit(e.sndNxt, n, false)
			e.sndNxt += uint64(n)
		}
	}
}

// segSize is the next segment's payload size.
func (e *Endpoint) segSize() int {
	n := e.mss
	if avail := int(e.appLimit - e.sndNxt); avail < n {
		n = avail
	}
	return n
}

func (e *Endpoint) armPaceTimer() {
	if e.paceTimer != nil {
		return
	}
	d := e.nextSend.Sub(e.eng.Now())
	e.paceTimer = e.eng.Schedule(d, func() {
		e.paceTimer = nil
		e.trySend()
	})
}

// transmit emits one segment and does the bookkeeping shared by new sends
// and retransmissions.
func (e *Endpoint) transmit(seq uint64, n int, retx bool) {
	now := e.eng.Now()
	p := &pkt.Packet{
		FlowID:     e.cfg.FlowID,
		Seq:        seq,
		PayloadLen: n,
		HeaderLen:  pkt.DefaultHeaderLen,
		ECT:        e.cfg.ECN,
		SentAt:     now,
	}
	e.segsOut++
	if retx {
		e.totalRetrans++
		if e.tm != nil {
			e.tm.retransC.Inc()
			e.tm.sc.Event(telemetry.SevInfo, "retransmit",
				telemetry.F("seq", float64(seq)), telemetry.F("bytes", float64(n)))
		}
		// Update the existing record so a later ACK does not take an RTT
		// sample from it (Karn's algorithm).
		for i := e.sentHead; i < len(e.sent); i++ {
			if e.sent[i].seq == seq {
				e.sent[i].retx = true
				e.sent[i].retxAt = now
				e.sent[i].gen++
				p.Gen = e.sent[i].gen
				break
			}
		}
	} else {
		e.sent = append(e.sent, sentSeg{seq: seq, end: seq + uint64(n), sentAt: now})
	}
	if e.cfg.OnTransmit != nil {
		e.cfg.OnTransmit(seq, n, retx)
	}
	e.armRTO()
	e.cfg.Out(p)
}

// armRTO (re)starts the retransmission timer.
func (e *Endpoint) armRTO() {
	if e.rtoTimer != nil {
		return
	}
	e.rtoTimer = e.eng.Schedule(e.rtt.rto, e.onRTO)
}

func (e *Endpoint) resetRTO() {
	if e.rtoTimer != nil {
		e.rtoTimer.Stop()
		e.rtoTimer = nil
	}
	if e.packetsOut() > 0 {
		e.armRTO()
	}
}

// onRTO fires on retransmission timeout: every outstanding un-SACKed
// segment is considered lost, the window collapses, and retransmission
// restarts from snd_una under the new (tiny) window.
func (e *Endpoint) onRTO() {
	e.rtoTimer = nil
	if e.closed || e.packetsOut() == 0 {
		return
	}
	if e.tm != nil {
		e.tm.rtoC.Inc()
		e.tm.sc.Event(telemetry.SevWarn, "rto_fire",
			telemetry.F("rto_seconds", e.rtt.rto.Seconds()),
			telemetry.F("packets_out", float64(e.packetsOut())))
	}
	e.cfg.CC.OnRTO(e.eng.Now())
	e.rtt.backoff()
	e.dupAcks = 0
	e.inRecov = false
	for i := e.sentHead; i < len(e.sent); i++ {
		s := &e.sent[i]
		if !s.sacked {
			s.lost = true
			s.queued = true
		}
	}
	e.armRTO() // keep the timer running even if trySend cannot transmit
	e.trySend()
}

// dupThresh is the classic three-duplicate threshold, in segments.
const dupThresh = 3

// HandleAck processes an incoming ACK at the sender: SACK scoreboard
// update, cumulative-ACK accounting, FACK-style loss detection, and
// congestion-control callbacks.
func (e *Endpoint) HandleAck(p *pkt.Packet) {
	if e.closed {
		return
	}
	now := e.eng.Now()
	if p.Wnd > 0 {
		e.rwnd = p.Wnd
	}
	ack := p.Ack
	if ack > e.sndNxt {
		ack = e.sndNxt // corrupted/future ACK: clamp
	}
	if e.processSack(p.Sack) {
		// SACK progress shows the network is still delivering: re-arm the
		// retransmission timer (Linux's tcp_rearm_rto behaviour), which
		// avoids spurious RTOs while a retransmission drains a deep queue.
		e.resetRTO()
	}
	switch {
	case ack > e.sndUna:
		e.handleNewAck(now, ack, p.ECE)
	case ack == e.sndUna && len(p.Sack) == 0 && e.packetsOut() > 0:
		// Legacy duplicate-ACK counting for SACK-less peers.
		e.dupAcks++
		if e.tm != nil {
			e.tm.dupAckC.Inc()
		}
		if e.dupAcks >= dupThresh && e.sentHead < len(e.sent) {
			s := &e.sent[e.sentHead]
			if !s.sacked && !s.lost {
				s.lost = true
				s.queued = true
			}
		}
	}
	e.detectLosses(now)
	e.trySend()
}

// processSack marks segments covered by the receiver's SACK blocks and
// reports whether any segment was newly SACKed.
func (e *Endpoint) processSack(blocks []pkt.Range) bool {
	if len(blocks) == 0 {
		return false
	}
	progress := false
	now := e.eng.Now()
	for i := e.sentHead; i < len(e.sent); i++ {
		s := &e.sent[i]
		if s.sacked {
			continue
		}
		for _, b := range blocks {
			if s.seq >= b.Start && s.end <= b.End {
				s.sacked = true
				s.lost = false
				s.queued = false
				progress = true
				// Sample the RTT at first-SACK time (as Linux does in
				// tcp_sacktag_one): waiting for the cumulative ACK would
				// inflate the sample by the hole-blocking time.
				if !s.retx {
					e.rtt.sample(now.Sub(s.sentAt))
				}
				break
			}
		}
	}
	return progress
}

// detectLosses applies the FACK rule: a segment is lost once bytes at least
// dupThresh segments beyond it have been SACKed. It also detects lost
// *retransmissions* RACK-style: the path delivers in order, so a SACK for
// any segment sent after a retransmission proves that retransmission was
// dropped. Newly detected losses enter fast recovery (one congestion event
// per window).
func (e *Endpoint) detectLosses(now units.Time) {
	var highestSacked uint64
	var latestSackedSentAt units.Time
	for i := e.sentHead; i < len(e.sent); i++ {
		s := &e.sent[i]
		if !s.sacked {
			continue
		}
		if s.end > highestSacked {
			highestSacked = s.end
		}
		t := s.sentAt
		if s.retxAt > t {
			t = s.retxAt
		}
		if t > latestSackedSentAt {
			latestSackedSentAt = t
		}
	}
	newlyLost := false
	for i := e.sentHead; i < len(e.sent); i++ {
		s := &e.sent[i]
		if s.sacked {
			continue
		}
		if !s.lost && highestSacked >= s.end+uint64(dupThresh*e.mss) {
			s.lost = true
			s.queued = true
			newlyLost = true
		}
		if s.lost && !s.queued && s.retxAt > 0 && latestSackedSentAt > s.retxAt {
			// The retransmission itself was lost: queue it again.
			s.queued = true
		}
	}
	if e.sentHead < len(e.sent) && e.sent[e.sentHead].lost && e.sent[e.sentHead].queued {
		newlyLost = true
	}
	if newlyLost && !e.inRecov {
		e.inRecov = true
		e.recover = e.sndNxt
		e.cfg.CC.OnLoss(now)
	}
}

func (e *Endpoint) handleNewAck(now units.Time, ack uint64, ece bool) {
	ackedBytes := int(ack - e.sndUna)
	e.sndUna = ack
	e.dupAcks = 0

	// Drop fully-acked segments; take an RTT sample from the newest
	// fully-acked segment that was never retransmitted nor already sampled
	// at SACK time.
	var rttSample units.Duration
	for e.sentHead < len(e.sent) && e.sent[e.sentHead].end <= ack {
		s := e.sent[e.sentHead]
		if !s.retx && !s.sacked {
			rttSample = now.Sub(s.sentAt)
		}
		e.sent[e.sentHead] = sentSeg{}
		e.sentHead++
	}
	if e.sentHead > 64 && e.sentHead*2 >= len(e.sent) {
		n := copy(e.sent, e.sent[e.sentHead:])
		e.sent = e.sent[:n]
		e.sentHead = 0
	}
	if rttSample > 0 {
		e.rtt.sample(rttSample)
		if e.tm != nil {
			e.tm.srttH.Observe(e.rtt.srtt.Seconds())
			if e.tm.srttS.DueAt(now) {
				e.tm.srttS.SampleValsAt(now, e.rtt.srtt.Seconds())
			}
		}
	}

	if e.inRecov && ack >= e.recover {
		e.inRecov = false
	}
	if ece {
		e.cfg.CC.OnECN(now)
	}
	e.cfg.CC.OnAck(now, ackedBytes, rttSample, int(e.sndNxt-e.sndUna), e.inRecov)
	e.resetRTO()
	if e.cfg.OnAcked != nil {
		e.cfg.OnAcked()
	}
}

// --- Receiver side -------------------------------------------------------

// HandleData processes an incoming data segment at the receiver.
func (e *Endpoint) HandleData(p *pkt.Packet) {
	if e.closed {
		return
	}
	e.segsIn++
	if p.CE {
		e.echoECE = true
	}
	seq, end := p.Seq, p.End()
	immediateAck := false

	switch {
	case end <= e.rcvNxt:
		// Pure duplicate (spurious retransmission): ACK immediately.
		immediateAck = true
	case seq > e.rcvNxt:
		// Out of order: queue the new part, dup-ACK immediately.
		e.insertOOO(seq, end)
		e.lastArrival = interval{seq, end}
		immediateAck = true
	default:
		// In-order (possibly overlapping the left edge, or bytes already
		// present in the out-of-order queue).
		if seq < e.rcvNxt {
			seq = e.rcvNxt
		}
		for _, r := range e.subtractOOO(seq, end) {
			e.reportNew(r.start, r.end)
		}
		e.rcvNxt = end
		e.mergeOOO()
		if e.cfg.OnInOrder != nil {
			e.cfg.OnInOrder(e.rcvNxt)
		}
		if len(e.ooo) > 0 {
			immediateAck = true // still a hole: keep the sender informed
		}
		if e.cfg.OnReadable != nil {
			e.cfg.OnReadable()
		}
	}

	e.unackedSegs++
	if immediateAck || e.unackedSegs >= 2 {
		e.sendAck()
	} else if e.ackTimer == nil {
		e.ackTimer = e.eng.Schedule(delayedAckTimeout, func() {
			e.ackTimer = nil
			if e.unackedSegs > 0 {
				if e.tm != nil {
					e.tm.delayedAckC.Inc()
				}
				e.sendAck()
			}
		})
	}
}

// subtractOOO returns the parts of [seq, end) not already present in the
// out-of-order queue.
func (e *Endpoint) subtractOOO(seq, end uint64) []interval {
	newRanges := []interval{{seq, end}}
	for _, iv := range e.ooo {
		var next []interval
		for _, r := range newRanges {
			// Overlap split.
			if iv.end <= r.start || iv.start >= r.end {
				next = append(next, r)
				continue
			}
			if r.start < iv.start {
				next = append(next, interval{r.start, iv.start})
			}
			if r.end > iv.end {
				next = append(next, interval{iv.end, r.end})
			}
		}
		newRanges = next
	}
	return newRanges
}

// insertOOO adds [seq, end) to the out-of-order queue, reporting only the
// genuinely new byte ranges, and keeps the queue sorted and disjoint.
func (e *Endpoint) insertOOO(seq, end uint64) {
	newRanges := e.subtractOOO(seq, end)
	for _, r := range newRanges {
		e.reportNew(r.start, r.end)
		e.oooBytes += int(r.end - r.start)
	}
	if len(newRanges) == 0 {
		return
	}
	// Insert and coalesce.
	e.ooo = append(e.ooo, interval{seq, end})
	e.normalizeOOO()
	e.sampleOOO()
}

// sampleOOO records the out-of-order queue depth after it changed.
func (e *Endpoint) sampleOOO() {
	if e.tm == nil {
		return
	}
	e.tm.oooBytesG.Set(float64(e.oooBytes))
	if e.tm.oooS.Due() {
		e.tm.oooS.SampleVals(float64(e.oooBytes), float64(len(e.ooo)))
	}
}

// normalizeOOO sorts and merges the out-of-order intervals.
func (e *Endpoint) normalizeOOO() {
	// Insertion sort: the queue is tiny in practice.
	for i := 1; i < len(e.ooo); i++ {
		for j := i; j > 0 && e.ooo[j].start < e.ooo[j-1].start; j-- {
			e.ooo[j], e.ooo[j-1] = e.ooo[j-1], e.ooo[j]
		}
	}
	merged := e.ooo[:0]
	for _, iv := range e.ooo {
		if n := len(merged); n > 0 && iv.start <= merged[n-1].end {
			if iv.end > merged[n-1].end {
				merged[n-1].end = iv.end
			}
			continue
		}
		merged = append(merged, iv)
	}
	e.ooo = merged
}

// mergeOOO pulls now-in-order intervals out of the queue after rcvNxt
// advanced.
func (e *Endpoint) mergeOOO() {
	merged := false
	for len(e.ooo) > 0 && e.ooo[0].start <= e.rcvNxt {
		iv := e.ooo[0]
		if iv.end > e.rcvNxt {
			e.oooBytes -= int(iv.end - iv.start)
			e.rcvNxt = iv.end
		} else {
			e.oooBytes -= int(iv.end - iv.start)
		}
		e.ooo = e.ooo[1:]
		merged = true
	}
	if merged {
		e.sampleOOO()
	}
}

// reportNew invokes the receive trace hook for a new byte range.
func (e *Endpoint) reportNew(seq, end uint64) {
	if e.cfg.OnReceiveNew != nil && end > seq {
		e.cfg.OnReceiveNew(seq, int(end-seq))
	}
}

// sendAck emits a (possibly duplicate) cumulative ACK.
func (e *Endpoint) sendAck() {
	e.unackedSegs = 0
	if e.ackTimer != nil {
		e.ackTimer.Stop()
		e.ackTimer = nil
	}
	held := int(e.rcvNxt-e.appConsumed) + e.oooBytes
	// Include up to four SACK blocks, like the TCP option space allows.
	// Per RFC 2018 the first block must be the range containing the most
	// recently received segment — with many holes this is what lets the
	// sender learn about every delivered range, not just the lowest ones.
	var sack []pkt.Range
	for _, iv := range e.ooo {
		if e.lastArrival.start >= iv.start && e.lastArrival.start < iv.end {
			sack = append(sack, pkt.Range{Start: iv.start, End: iv.end})
			break
		}
	}
	for i := 0; i < len(e.ooo) && len(sack) < 4; i++ {
		blk := pkt.Range{Start: e.ooo[i].start, End: e.ooo[i].end}
		if len(sack) > 0 && blk == sack[0] {
			continue
		}
		sack = append(sack, blk)
	}
	wnd := e.rcvBuf.AdvertisedWindow(held)
	e.lastAdvWnd = wnd
	p := &pkt.Packet{
		FlowID:    e.cfg.FlowID,
		Flags:     pkt.FlagACK,
		Ack:       e.rcvNxt,
		Wnd:       wnd,
		Sack:      sack,
		ECE:       e.echoECE,
		HeaderLen: pkt.DefaultHeaderLen,
		SentAt:    e.eng.Now(),
	}
	e.echoECE = false
	e.cfg.Out(p)
}

// ReadableBytes reports in-order bytes the application has not consumed.
func (e *Endpoint) ReadableBytes() int { return int(e.rcvNxt - e.appConsumed) }

// Consume marks n readable bytes as read by the application and returns the
// cumulative consumed offset. If the advertised window had collapsed and
// this read reopened it, a window-update ACK is sent — without it a sender
// stalled on a zero window would never learn it may resume (this stack has
// no persist timer).
func (e *Endpoint) Consume(n int) uint64 {
	if n > e.ReadableBytes() {
		n = e.ReadableBytes()
	}
	e.appConsumed += uint64(n)
	if !e.closed && e.lastAdvWnd < 2*e.mss && n > 0 {
		held := int(e.rcvNxt-e.appConsumed) + e.oooBytes
		if e.rcvBuf.AdvertisedWindow(held) >= 2*e.mss {
			e.sendAck()
		}
	}
	return e.appConsumed
}

// RcvNxt reports the next expected sequence number.
func (e *Endpoint) RcvNxt() uint64 { return e.rcvNxt }

// --- Introspection -------------------------------------------------------

// Handle dispatches an incoming packet to the data or ACK path. A packet
// carrying both data and an ACK (not produced by this stack) is treated as
// data first.
func (e *Endpoint) Handle(p *pkt.Packet) {
	if p.PayloadLen > 0 {
		e.HandleData(p)
		return
	}
	if p.Flags.Has(pkt.FlagACK) {
		e.HandleAck(p)
	}
}

// Close stops all timers. Further events are ignored.
func (e *Endpoint) Close() {
	e.closed = true
	for _, t := range []*sim.Timer{e.rtoTimer, e.paceTimer, e.ackTimer} {
		if t != nil {
			t.Stop()
		}
	}
	e.rtoTimer, e.paceTimer, e.ackTimer = nil, nil, nil
}

// SRTT reports the smoothed RTT estimate.
func (e *Endpoint) SRTT() units.Duration { return e.rtt.srtt }

// Info reports the TCP_INFO snapshot for this endpoint. The socket layer
// fills in SndBuf.
func (e *Endpoint) Info() tcpinfo.TCPInfo {
	info := tcpinfo.TCPInfo{
		BytesAcked:   e.sndUna,
		Unacked:      e.packetsOut(),
		SndMSS:       e.mss,
		RcvMSS:       e.mss,
		SegsIn:       e.segsIn,
		SegsOut:      e.segsOut,
		RTT:          e.rtt.srtt,
		RTTVar:       e.rtt.rttvar,
		TotalRetrans: e.totalRetrans,
	}
	if e.cfg.CC != nil {
		info.SndCwnd = e.cfg.CC.CwndBytes() / e.mss
		info.SndSsthresh = e.cfg.CC.SsthreshSegs()
		info.PacingRate = e.cfg.CC.PacingRate()
	}
	return info
}
