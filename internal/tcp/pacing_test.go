package tcp

import (
	"testing"

	"element/internal/pkt"
	"element/internal/sim"
	"element/internal/units"
)

// pacedCC is a fixed-rate, fixed-window fake for pacing tests.
type pacedCC struct {
	cwnd int
	rate units.Rate
}

func (c *pacedCC) Name() string { return "paced-fake" }
func (c *pacedCC) OnAck(units.Time, int, units.Duration, int, bool) {
}
func (c *pacedCC) OnLoss(units.Time)      {}
func (c *pacedCC) OnECN(units.Time)       {}
func (c *pacedCC) OnRTO(units.Time)       {}
func (c *pacedCC) CwndBytes() int         { return c.cwnd }
func (c *pacedCC) SsthreshSegs() int      { return 1 << 20 }
func (c *pacedCC) PacingRate() units.Rate { return c.rate }

func TestPacingSpacesTransmissions(t *testing.T) {
	eng := sim.New(1)
	var times []units.Time
	ep := New(eng, Config{
		FlowID: 1,
		CC:     &pacedCC{cwnd: 1 << 20, rate: 12 * units.Mbps},
		Out:    func(p *pkt.Packet) { times = append(times, eng.Now()) },
	})
	ep.SetAvailable(20 * DefaultMSS)
	eng.RunFor(500 * units.Millisecond) // below the initial RTO
	if len(times) != 20 {
		t.Fatalf("sent %d segments, want 20", len(times))
	}
	// 1500 wire bytes at 12 Mbps = 1 ms spacing.
	want := units.Duration(1000 * units.Microsecond)
	for i := 1; i < len(times); i++ {
		gap := times[i].Sub(times[i-1])
		if gap < want-10*units.Microsecond || gap > want+10*units.Microsecond {
			t.Fatalf("gap %d = %v, want ≈ %v", i, gap, want)
		}
	}
	ep.Close()
	eng.Shutdown()
}

func TestPacingStillWindowLimited(t *testing.T) {
	eng := sim.New(1)
	sent := 0
	ep := New(eng, Config{
		FlowID: 1,
		CC:     &pacedCC{cwnd: 3 * DefaultMSS, rate: 100 * units.Mbps},
		Out:    func(p *pkt.Packet) { sent++ },
	})
	ep.SetAvailable(100 * DefaultMSS)
	eng.RunFor(500 * units.Millisecond) // below the initial RTO
	if sent != 3 {
		t.Fatalf("sent %d, want 3 (window-limited despite pacing)", sent)
	}
	ep.Close()
	eng.Shutdown()
}

func TestCloseStopsActivity(t *testing.T) {
	eng := sim.New(1)
	sent := 0
	ep := New(eng, Config{
		FlowID: 1,
		CC:     &pacedCC{cwnd: 1 << 20, rate: units.Mbps},
		Out:    func(p *pkt.Packet) { sent++ },
	})
	ep.SetAvailable(100 * DefaultMSS)
	eng.RunFor(20 * units.Millisecond)
	before := sent
	ep.Close()
	eng.RunFor(units.Second)
	if sent != before {
		t.Fatalf("endpoint kept transmitting after Close: %d -> %d", before, sent)
	}
	// Further input must be ignored.
	ep.HandleAck(&pkt.Packet{Flags: pkt.FlagACK, Ack: DefaultMSS})
	ep.HandleData(&pkt.Packet{Seq: 0, PayloadLen: 100})
	if ep.ReadableBytes() != 0 {
		t.Fatal("closed endpoint accepted data")
	}
	eng.Shutdown()
}
