package tcp

import (
	"testing"
	"testing/quick"

	"element/internal/cc"
	"element/internal/pkt"
	"element/internal/sim"
	"element/internal/units"
)

// senderHarness wires an Endpoint to a captured output queue.
type senderHarness struct {
	eng *sim.Engine
	ep  *Endpoint
	out []*pkt.Packet
}

func newSenderHarness(t *testing.T, kind cc.Kind) *senderHarness {
	t.Helper()
	h := &senderHarness{eng: sim.New(1)}
	h.ep = New(h.eng, Config{
		FlowID: 1,
		CC:     cc.MustNew(kind, DefaultMSS, h.eng.Rand()),
		Out:    func(p *pkt.Packet) { h.out = append(h.out, p) },
	})
	return h
}

// ackUpTo delivers a cumulative ACK to the sender.
func (h *senderHarness) ackUpTo(seq uint64) {
	h.ep.HandleAck(&pkt.Packet{Flags: pkt.FlagACK, Ack: seq, Wnd: 1 << 20})
}

func TestSenderInitialWindowBurst(t *testing.T) {
	h := newSenderHarness(t, cc.KindReno)
	h.ep.SetAvailable(1 << 20) // transmissions happen synchronously
	// Initial cwnd is 10 segments.
	if len(h.out) != 10 {
		t.Fatalf("sent %d segments, want 10 (initial window)", len(h.out))
	}
	for i, p := range h.out {
		if p.Seq != uint64(i*DefaultMSS) || p.PayloadLen != DefaultMSS {
			t.Fatalf("segment %d: seq=%d len=%d", i, p.Seq, p.PayloadLen)
		}
	}
	if h.ep.Info().Unacked != 10 {
		t.Fatalf("Unacked = %d, want 10", h.ep.Info().Unacked)
	}
}

func TestSenderAppLimited(t *testing.T) {
	h := newSenderHarness(t, cc.KindReno)
	h.ep.SetAvailable(2000) // less than two full segments
	if len(h.out) != 2 {
		t.Fatalf("sent %d segments, want 2", len(h.out))
	}
	if h.out[0].PayloadLen != DefaultMSS || h.out[1].PayloadLen != 2000-DefaultMSS {
		t.Fatalf("segment sizes %d, %d", h.out[0].PayloadLen, h.out[1].PayloadLen)
	}
}

func TestSenderAckAdvancesAndGrows(t *testing.T) {
	h := newSenderHarness(t, cc.KindReno)
	h.ep.SetAvailable(1 << 20)
	sentBefore := len(h.out)
	h.eng.RunFor(50 * units.Millisecond)
	h.ackUpTo(uint64(3 * DefaultMSS))
	if h.ep.SndUna() != uint64(3*DefaultMSS) {
		t.Fatalf("SndUna = %d", h.ep.SndUna())
	}
	// Slow start: 3 segments acked → cwnd grows by 3 → 3 freed + 3 extra.
	if got := len(h.out) - sentBefore; got != 6 {
		t.Fatalf("sent %d more segments, want 6", got)
	}
	if h.ep.Info().BytesAcked != uint64(3*DefaultMSS) {
		t.Fatalf("BytesAcked = %d", h.ep.Info().BytesAcked)
	}
}

func TestSenderSACKFastRetransmit(t *testing.T) {
	h := newSenderHarness(t, cc.KindReno)
	h.ep.SetAvailable(1 << 20)
	h.eng.RunFor(10 * units.Millisecond)
	base := len(h.out)
	// The receiver got segments 1..7 but not 0: a SACK block well past the
	// FACK threshold must mark segment 0 lost and retransmit it (the pipe
	// is drained enough by the SACKed bytes for cwnd/2 to admit it).
	h.ep.HandleAck(&pkt.Packet{
		Flags: pkt.FlagACK, Ack: 0, Wnd: 1 << 20,
		Sack: []pkt.Range{{Start: DefaultMSS, End: 8 * DefaultMSS}},
	})
	var rtx *pkt.Packet
	for _, p := range h.out[base:] {
		if p.Seq == 0 {
			rtx = p
		}
	}
	if rtx == nil {
		t.Fatalf("segment 0 not retransmitted; sent %d packets", len(h.out)-base)
	}
	if h.ep.Info().TotalRetrans != 1 {
		t.Fatalf("TotalRetrans = %d", h.ep.Info().TotalRetrans)
	}
	// The same SACK again must not retransmit segment 0 twice.
	h.ep.HandleAck(&pkt.Packet{
		Flags: pkt.FlagACK, Ack: 0, Wnd: 1 << 20,
		Sack: []pkt.Range{{Start: DefaultMSS, End: 8 * DefaultMSS}},
	})
	if h.ep.Info().TotalRetrans != 1 {
		t.Fatal("retransmitted again on repeated SACK")
	}
	// Filling the hole exits recovery and resumes new data.
	sentBefore := len(h.out)
	h.ackUpTo(8 * DefaultMSS)
	if len(h.out) <= sentBefore {
		t.Fatal("no new data after recovery")
	}
}

func TestSenderLegacyDupAckRetransmit(t *testing.T) {
	// A SACK-less peer: three pure duplicate ACKs mark the first segment
	// lost; the retransmission goes out once the pipe allows.
	h := newSenderHarness(t, cc.KindReno)
	h.ep.SetAvailable(3 * DefaultMSS) // small flight so pipe < cwnd/2
	h.eng.RunFor(10 * units.Millisecond)
	base := len(h.out)
	for i := 0; i < 3; i++ {
		h.ackUpTo(0)
	}
	if len(h.out) != base+1 || h.out[base].Seq != 0 {
		t.Fatalf("expected one retransmission of seq 0, got %d new packets", len(h.out)-base)
	}
}

func TestSenderRTO(t *testing.T) {
	h := newSenderHarness(t, cc.KindReno)
	h.ep.SetAvailable(10 * DefaultMSS)
	h.eng.RunFor(10 * units.Millisecond)
	base := len(h.out)
	// No ACKs at all: the RTO (initial 1s) must fire and retransmit seq 0.
	h.eng.RunFor(2 * units.Second)
	if len(h.out) <= base {
		t.Fatal("RTO did not retransmit")
	}
	if h.out[base].Seq != 0 {
		t.Fatalf("RTO retransmitted seq %d, want 0", h.out[base].Seq)
	}
	if h.ep.Info().SndCwnd != 1 {
		t.Fatalf("cwnd after RTO = %d segments, want 1", h.ep.Info().SndCwnd)
	}
}

func TestSenderRTOBackoff(t *testing.T) {
	h := newSenderHarness(t, cc.KindReno)
	h.ep.SetAvailable(DefaultMSS)
	var times []units.Time
	h.eng.RunFor(10 * units.Millisecond)
	for _, p := range h.out {
		_ = p
	}
	// Record retransmission times over 10 seconds of silence.
	h.eng.RunFor(10 * units.Second)
	for _, p := range h.out[1:] {
		times = append(times, p.SentAt)
	}
	if len(times) < 3 {
		t.Fatalf("only %d retransmissions in 10s", len(times))
	}
	gap1 := times[1].Sub(times[0])
	gap2 := times[2].Sub(times[1])
	if gap2 < gap1*2-10*units.Millisecond {
		t.Fatalf("RTO not backing off: gaps %v then %v", gap1, gap2)
	}
}

func TestSenderRwndLimits(t *testing.T) {
	h := newSenderHarness(t, cc.KindReno)
	h.ep.SetAvailable(1 << 20)
	h.eng.RunFor(time10ms())
	// Ack everything but clamp the advertised window to 2 segments.
	h.ep.HandleAck(&pkt.Packet{Flags: pkt.FlagACK, Ack: uint64(10 * DefaultMSS), Wnd: 2 * DefaultMSS})
	inFlight := int(h.ep.SndNxt() - h.ep.SndUna())
	if inFlight > 2*DefaultMSS {
		t.Fatalf("in flight %d bytes exceeds rwnd %d", inFlight, 2*DefaultMSS)
	}
}

func time10ms() units.Duration { return 10 * units.Millisecond }

// receiverHarness wires a receiving Endpoint to captured ACKs.
type receiverHarness struct {
	eng  *sim.Engine
	ep   *Endpoint
	acks []*pkt.Packet
	got  []interval
}

func newReceiverHarness(t *testing.T) *receiverHarness {
	t.Helper()
	h := &receiverHarness{eng: sim.New(1)}
	h.ep = New(h.eng, Config{
		FlowID: 1,
		Out:    func(p *pkt.Packet) { h.acks = append(h.acks, p) },
		OnReceiveNew: func(seq uint64, n int) {
			h.got = append(h.got, interval{seq, seq + uint64(n)})
		},
	})
	return h
}

func (h *receiverHarness) data(seq uint64, n int) {
	h.ep.HandleData(&pkt.Packet{FlowID: 1, Seq: seq, PayloadLen: n})
}

func TestReceiverInOrder(t *testing.T) {
	h := newReceiverHarness(t)
	h.data(0, 1000)
	h.data(1000, 1000)
	if h.ep.RcvNxt() != 2000 {
		t.Fatalf("RcvNxt = %d", h.ep.RcvNxt())
	}
	if h.ep.ReadableBytes() != 2000 {
		t.Fatalf("Readable = %d", h.ep.ReadableBytes())
	}
	// Delayed-ACK: second segment triggers the every-2 ACK.
	if len(h.acks) != 1 || h.acks[0].Ack != 2000 {
		t.Fatalf("acks = %v", h.acks)
	}
}

func TestReceiverDelayedAckTimer(t *testing.T) {
	h := newReceiverHarness(t)
	h.data(0, 1000)
	if len(h.acks) != 0 {
		t.Fatal("acked immediately; want delayed")
	}
	h.eng.RunFor(50 * units.Millisecond)
	if len(h.acks) != 1 || h.acks[0].Ack != 1000 {
		t.Fatalf("delayed ack not sent: %v", h.acks)
	}
}

func TestReceiverOutOfOrder(t *testing.T) {
	h := newReceiverHarness(t)
	h.data(0, 1000)
	h.data(2000, 1000) // hole at [1000,2000)
	// The OOO arrival must produce an immediate duplicate ACK at 1000.
	if len(h.acks) == 0 || h.acks[len(h.acks)-1].Ack != 1000 {
		t.Fatalf("no dupack: %v", h.acks)
	}
	if h.ep.ReadableBytes() != 1000 {
		t.Fatalf("Readable = %d, want 1000 (hole)", h.ep.ReadableBytes())
	}
	h.data(1000, 1000) // fill the hole
	if h.ep.RcvNxt() != 3000 {
		t.Fatalf("RcvNxt after fill = %d, want 3000", h.ep.RcvNxt())
	}
	if h.ep.ReadableBytes() != 3000 {
		t.Fatalf("Readable = %d, want 3000", h.ep.ReadableBytes())
	}
	// Every byte reported exactly once.
	total := 0
	for _, iv := range h.got {
		total += int(iv.end - iv.start)
	}
	if total != 3000 {
		t.Fatalf("reported %d new bytes, want 3000 (%v)", total, h.got)
	}
}

func TestReceiverDuplicateSuppressed(t *testing.T) {
	h := newReceiverHarness(t)
	h.data(0, 1000)
	h.data(0, 1000) // spurious retransmission
	total := 0
	for _, iv := range h.got {
		total += int(iv.end - iv.start)
	}
	if total != 1000 {
		t.Fatalf("reported %d bytes, want 1000", total)
	}
	if h.ep.Info().SegsIn != 2 {
		t.Fatalf("SegsIn = %d, want 2 (duplicates still count)", h.ep.Info().SegsIn)
	}
}

func TestReceiverConsume(t *testing.T) {
	h := newReceiverHarness(t)
	h.data(0, 3000)
	if got := h.ep.Consume(1200); got != 1200 {
		t.Fatalf("Consume returned %d", got)
	}
	if h.ep.ReadableBytes() != 1800 {
		t.Fatalf("Readable = %d", h.ep.ReadableBytes())
	}
	if got := h.ep.Consume(1 << 20); got != 3000 {
		t.Fatalf("Consume clamped to %d, want 3000", got)
	}
}

func TestReceiverECNEcho(t *testing.T) {
	h := newReceiverHarness(t)
	h.ep.HandleData(&pkt.Packet{FlowID: 1, Seq: 0, PayloadLen: 1000, CE: true})
	h.ep.HandleData(&pkt.Packet{FlowID: 1, Seq: 1000, PayloadLen: 1000})
	if len(h.acks) != 1 || !h.acks[0].ECE {
		t.Fatalf("CE not echoed: %+v", h.acks)
	}
	h.data(2000, 1000)
	h.data(3000, 1000)
	if h.acks[1].ECE {
		t.Fatal("ECE latched beyond one ACK")
	}
}

// Property: for any arrival permutation of a contiguous stream, the
// receiver ends with RcvNxt at the stream end, every byte reported exactly
// once, and no interval overlap.
func TestPropertyReceiverReassembly(t *testing.T) {
	f := func(perm []uint8) bool {
		const segs = 20
		const segLen = 500
		order := make([]int, segs)
		for i := range order {
			order[i] = i
		}
		// Fisher-Yates keyed by the random input.
		for i := len(order) - 1; i > 0; i-- {
			j := 0
			if len(perm) > 0 {
				j = int(perm[i%len(perm)]) % (i + 1)
			}
			order[i], order[j] = order[j], order[i]
		}
		h := &receiverHarness{eng: sim.New(1)}
		h.ep = New(h.eng, Config{
			FlowID: 1,
			Out:    func(p *pkt.Packet) {},
			OnReceiveNew: func(seq uint64, n int) {
				h.got = append(h.got, interval{seq, seq + uint64(n)})
			},
		})
		for _, idx := range order {
			h.data(uint64(idx*segLen), segLen)
			// Duplicate delivery of a random earlier segment.
			h.data(uint64(order[0]*segLen), segLen)
		}
		if h.ep.RcvNxt() != segs*segLen {
			return false
		}
		seen := make([]bool, segs*segLen)
		for _, iv := range h.got {
			for b := iv.start; b < iv.end; b++ {
				if seen[b] {
					return false // double report
				}
				seen[b] = true
			}
		}
		for _, s := range seen {
			if !s {
				return false // missing byte
			}
		}
		return h.ep.ReadableBytes() == segs*segLen
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
