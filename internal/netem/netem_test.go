package netem

import (
	"testing"
	"testing/quick"

	"element/internal/aqm"
	"element/internal/pkt"
	"element/internal/sim"
	"element/internal/units"
)

func TestLinkSerializationAndPropagation(t *testing.T) {
	eng := sim.New(1)
	var arrivals []units.Time
	l := NewLink(eng, LinkConfig{
		Rate:  10 * units.Mbps,
		Delay: 25 * units.Millisecond,
	}, func(p *pkt.Packet) { arrivals = append(arrivals, eng.Now()) })

	// 1460+40 = 1500 bytes at 10 Mbps = 1.2 ms serialization.
	for i := 0; i < 3; i++ {
		l.Send(&pkt.Packet{PayloadLen: 1460, HeaderLen: 40})
	}
	eng.Run()
	if len(arrivals) != 3 {
		t.Fatalf("arrivals = %d, want 3", len(arrivals))
	}
	tx := units.Duration(1200 * units.Microsecond)
	for i, a := range arrivals {
		want := units.Time(0).Add(units.Duration(i+1)*tx + 25*units.Millisecond)
		if diff := a.Sub(want); diff > units.Microsecond || diff < -units.Microsecond {
			t.Fatalf("arrival %d at %v, want %v", i, a, want)
		}
	}
}

func TestLinkQueueBuildsDelay(t *testing.T) {
	eng := sim.New(1)
	var last units.Time
	n := 0
	l := NewLink(eng, LinkConfig{Rate: 10 * units.Mbps}, func(p *pkt.Packet) {
		last = eng.Now()
		n++
	})
	// 100 packets burst: last should leave at ~100 * 1.2ms.
	for i := 0; i < 100; i++ {
		l.Send(&pkt.Packet{PayloadLen: 1460, HeaderLen: 40})
	}
	if l.QueueLen() != 99 { // one is in the transmitter
		t.Fatalf("QueueLen = %d, want 99", l.QueueLen())
	}
	eng.Run()
	if n != 100 {
		t.Fatalf("delivered %d, want 100", n)
	}
	want := units.Time(0).Add(100 * 1200 * units.Microsecond)
	if diff := last.Sub(want); diff > units.Microsecond || diff < -units.Microsecond {
		t.Fatalf("last delivery %v, want %v", last, want)
	}
}

func TestLinkLoss(t *testing.T) {
	eng := sim.New(7)
	delivered := 0
	l := NewLink(eng, LinkConfig{
		Rate: 1 * units.Gbps, LossRate: 0.3,
		Discipline: aqm.NewFIFO(aqm.Config{LimitPackets: 20000}),
	}, func(p *pkt.Packet) {
		delivered++
	})
	const total = 10000
	for i := 0; i < total; i++ {
		l.Send(&pkt.Packet{PayloadLen: 100})
	}
	eng.Run()
	st := l.Stats()
	if st.Lost+delivered != total {
		t.Fatalf("lost %d + delivered %d != %d", st.Lost, delivered, total)
	}
	frac := float64(st.Lost) / total
	if frac < 0.25 || frac > 0.35 {
		t.Fatalf("loss fraction %v, want ≈ 0.3", frac)
	}
}

func TestJitterPreservesOrder(t *testing.T) {
	eng := sim.New(3)
	var seqs []uint64
	l := NewLink(eng, LinkConfig{
		Rate:   100 * units.Mbps,
		Delay:  10 * units.Millisecond,
		Jitter: 20 * units.Millisecond,
	}, func(p *pkt.Packet) { seqs = append(seqs, p.Seq) })
	for i := 0; i < 500; i++ {
		l.Send(&pkt.Packet{Seq: uint64(i), PayloadLen: 100})
	}
	eng.Run()
	if len(seqs) != 500 {
		t.Fatalf("delivered %d", len(seqs))
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] < seqs[i-1] {
			t.Fatalf("reordering at %d: %d after %d", i, seqs[i], seqs[i-1])
		}
	}
}

func TestSetRateTakesEffect(t *testing.T) {
	eng := sim.New(1)
	var times []units.Time
	l := NewLink(eng, LinkConfig{Rate: 10 * units.Mbps}, func(p *pkt.Packet) {
		times = append(times, eng.Now())
	})
	l.Send(&pkt.Packet{PayloadLen: 1460, HeaderLen: 40})
	eng.Schedule(600*units.Microsecond, func() { l.SetRate(100 * units.Mbps) })
	eng.Schedule(2*units.Millisecond, func() {
		l.Send(&pkt.Packet{PayloadLen: 1460, HeaderLen: 40})
	})
	eng.Run()
	// First packet at the slow rate: 1.2ms. Second at fast rate: 0.12ms.
	if times[0] != units.Time(1200*units.Microsecond) {
		t.Fatalf("first delivery at %v", times[0])
	}
	want := units.Time(2*units.Millisecond + 120*units.Microsecond)
	if times[1] != want {
		t.Fatalf("second delivery at %v, want %v", times[1], want)
	}
}

func TestPathDuplex(t *testing.T) {
	eng := sim.New(1)
	p := NewPath(eng, PathConfig{
		Forward: LinkConfig{Rate: 10 * units.Mbps, Delay: 25 * units.Millisecond},
	})
	var atB, atA int
	p.AttachB(func(q *pkt.Packet) {
		atB++
		p.SendBtoA(&pkt.Packet{Flags: pkt.FlagACK})
	})
	p.AttachA(func(q *pkt.Packet) { atA++ })
	p.SendAtoB(&pkt.Packet{PayloadLen: 1000})
	eng.Run()
	if atB != 1 || atA != 1 {
		t.Fatalf("atB=%d atA=%d", atB, atA)
	}
	if got := p.RTT(); got != 50*units.Millisecond {
		t.Fatalf("RTT = %v", got)
	}
	// BDP: 10 Mbps * 50 ms = 62500 bytes.
	if got := p.BDPBytes(); got != 62500 {
		t.Fatalf("BDP = %d", got)
	}
}

func TestProfileLookup(t *testing.T) {
	for _, name := range []string{"lan", "cable", "wifi", "lte", "wired-low-bw", "wired-high-bw"} {
		p, err := ProfileByName(name)
		if err != nil {
			t.Fatalf("ProfileByName(%q): %v", name, err)
		}
		if p.Name != name {
			t.Fatalf("got %q", p.Name)
		}
	}
	if _, err := ProfileByName("dialup"); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestProfileBuildDirections(t *testing.T) {
	eng := sim.New(1)
	down := Cable.Build(eng, BuildOptions{Direction: Download})
	if down.Forward.Rate() != 100*units.Mbps || down.Reverse.Rate() != 10*units.Mbps {
		t.Fatalf("download rates: fwd=%v rev=%v", down.Forward.Rate(), down.Reverse.Rate())
	}
	up := Cable.Build(eng, BuildOptions{Direction: Upload, Discipline: aqm.KindCoDel})
	if up.Forward.Rate() != 10*units.Mbps {
		t.Fatalf("upload fwd rate = %v", up.Forward.Rate())
	}
	if up.Forward.Discipline().Name() != "codel" {
		t.Fatalf("discipline = %q", up.Forward.Discipline().Name())
	}
}

func TestModulationVariesRate(t *testing.T) {
	eng := sim.New(11)
	path := WiFi.Build(eng, BuildOptions{})
	rates := map[units.Rate]bool{}
	var sample func()
	sample = func() {
		rates[path.Forward.Rate()] = true
		if eng.Now() < units.Time(2*units.Second) {
			eng.Schedule(10*units.Millisecond, sample)
		}
	}
	eng.Schedule(units.Millisecond, sample)
	// The modulation process reschedules itself forever, so bound the run.
	eng.RunUntil(units.Time(3 * units.Second))
	if len(rates) < 10 {
		t.Fatalf("rate took only %d distinct values", len(rates))
	}
	for r := range rates {
		if r < units.Rate(float64(WiFi.DownRate)*0.1) || r > WiFi.DownRate {
			t.Fatalf("rate %v outside modulation envelope", r)
		}
	}
}

func TestDynamicBandwidthToggle(t *testing.T) {
	eng := sim.New(1)
	l := NewLink(eng, LinkConfig{Rate: 10 * units.Mbps}, func(p *pkt.Packet) {})
	StartDynamicBandwidth(eng, l, 10*units.Mbps, 50*units.Mbps, 20*units.Second)
	eng.RunUntil(units.Time(30 * units.Second))
	if l.Rate() != 50*units.Mbps {
		t.Fatalf("rate after 30s = %v, want 50Mbps", l.Rate())
	}
	eng.RunUntil(units.Time(50 * units.Second))
	if l.Rate() != 10*units.Mbps {
		t.Fatalf("rate after 50s = %v, want 10Mbps", l.Rate())
	}
	eng.Shutdown()
}

// Property: a link never reorders packets and conserves them (delivered +
// lost + queued = sent) for any burst pattern without loss.
func TestPropertyLinkConservation(t *testing.T) {
	f := func(sizes []uint16) bool {
		eng := sim.New(5)
		var got []uint64
		l := NewLink(eng, LinkConfig{Rate: 5 * units.Mbps, Delay: units.Millisecond},
			func(p *pkt.Packet) { got = append(got, p.Seq) })
		sent := 0
		for i, s := range sizes {
			if len(sizes) > 200 && i >= 200 {
				break
			}
			l.Send(&pkt.Packet{Seq: uint64(i), PayloadLen: int(s % 1460)})
			sent++
		}
		eng.Run()
		drops := l.QueueStats().TailDrops
		if len(got)+drops != sent {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i] <= got[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
