package netem

import (
	"fmt"
	"math/rand"

	"element/internal/aqm"
	"element/internal/sim"
	"element/internal/units"
)

// Direction selects which way application data flows across a profile.
type Direction int

// Directions.
const (
	Download Direction = iota // server → client: client-side downlink is the bottleneck
	Upload                    // client → server: client-side uplink is the bottleneck
)

func (d Direction) String() string {
	if d == Upload {
		return "upload"
	}
	return "download"
}

// Modulation describes a time-varying bandwidth process applied to a link,
// used to model the MAC/PHY variability of WiFi and LTE.
type Modulation struct {
	// Period is how often a new rate is drawn.
	Period units.Duration
	// MinFactor/MaxFactor bound the multiplicative rate factor drawn
	// uniformly each period.
	MinFactor, MaxFactor float64
	// FadeProb is the per-period probability of a deep fade, which
	// multiplies the drawn factor by FadeFactor.
	FadeProb   float64
	FadeFactor float64
}

// apply starts the modulation process on l.
func (m Modulation) apply(eng *sim.Engine, l *Link, base units.Rate, rng *rand.Rand) {
	if m.Period == 0 {
		return
	}
	var tick func()
	tick = func() {
		f := m.MinFactor + rng.Float64()*(m.MaxFactor-m.MinFactor)
		if m.FadeProb > 0 && rng.Float64() < m.FadeProb {
			f *= m.FadeFactor
		}
		l.SetRate(units.Rate(float64(base) * f))
		eng.Schedule(m.Period, tick)
	}
	eng.Schedule(0, tick)
}

// Profile models one of the paper's evaluation networks. DownRate is the
// capacity toward the client, UpRate away from it; the direction chosen at
// Build time decides which one carries the data (and gets the AQM queue).
type Profile struct {
	Name     string
	DownRate units.Rate
	UpRate   units.Rate
	RTT      units.Duration
	Jitter   units.Duration
	LossRate float64
	// QueuePackets is the bottleneck buffer depth (0 = discipline default).
	QueuePackets int
	// Mod, when non-zero, modulates the bottleneck rate over time.
	Mod Modulation
}

// Production network profiles approximating the paper's testbeds (§2.2,
// §4.3, §5.1). Values encode the qualitative properties the evaluation
// relies on: bandwidth scale, RTT scale, variability, and buffer depth.
var (
	// WiredLowBW is the controlled testbed: 10 Mbps, 25 ms one-way delay.
	WiredLowBW = Profile{
		Name: "wired-low-bw", DownRate: 10 * units.Mbps, UpRate: 10 * units.Mbps,
		RTT: 50 * units.Millisecond,
	}
	// WiredHighBW is the 1 Gbps local-network testbed (sub-ms RTT).
	WiredHighBW = Profile{
		Name: "wired-high-bw", DownRate: 1 * units.Gbps, UpRate: 1 * units.Gbps,
		RTT: 1 * units.Millisecond,
	}
	// LAN is the production local network (§5.1: RTT below 2 ms).
	LAN = Profile{
		Name: "lan", DownRate: 1 * units.Gbps, UpRate: 1 * units.Gbps,
		RTT: 800 * units.Microsecond,
	}
	// Cable models the Motorola DCT700 DOCSIS service: asymmetric rates,
	// moderate RTT, deep modem uplink buffer.
	Cable = Profile{
		Name: "cable", DownRate: 100 * units.Mbps, UpRate: 10 * units.Mbps,
		RTT: 20 * units.Millisecond, Jitter: 2 * units.Millisecond,
		QueuePackets: 256,
	}
	// WiFi models an 802.11ac home AP: high but fluctuating rate from MAC
	// contention, small base RTT, occasional deep fades.
	WiFi = Profile{
		Name: "wifi", DownRate: 80 * units.Mbps, UpRate: 60 * units.Mbps,
		RTT: 6 * units.Millisecond, Jitter: 3 * units.Millisecond,
		QueuePackets: 256,
		Mod: Modulation{
			Period: 20 * units.Millisecond, MinFactor: 0.5, MaxFactor: 1.0,
			FadeProb: 0.05, FadeFactor: 0.25,
		},
	}
	// LTE models the AT&T Netgear AC340U setup: variable rate, long RTT,
	// very deep basestation/modem buffers (the classic cellular
	// bufferbloat configuration), small random loss.
	LTE = Profile{
		Name: "lte", DownRate: 30 * units.Mbps, UpRate: 12 * units.Mbps,
		RTT: 60 * units.Millisecond, Jitter: 10 * units.Millisecond,
		LossRate: 0.0002, QueuePackets: 512,
		Mod: Modulation{
			Period: 50 * units.Millisecond, MinFactor: 0.4, MaxFactor: 1.0,
			FadeProb: 0.02, FadeFactor: 0.3,
		},
	}
)

// ProfileByName looks up a production profile.
func ProfileByName(name string) (Profile, error) {
	for _, p := range []Profile{WiredLowBW, WiredHighBW, LAN, Cable, WiFi, LTE} {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("netem: unknown profile %q", name)
}

// BuildOptions tune profile construction.
type BuildOptions struct {
	// Discipline selects the bottleneck AQM (default pfifo_fast).
	Discipline aqm.Kind
	// ECN enables CE marking in the bottleneck AQM.
	ECN bool
	// Direction selects which way data flows (default Download).
	Direction Direction
}

// Build instantiates the profile as a duplex path on eng. The forward link
// is the data direction with the profile's bottleneck buffer and the chosen
// AQM; the reverse link carries ACKs over a plain FIFO at the opposite
// direction's rate.
func (pr Profile) Build(eng *sim.Engine, opt BuildOptions) *Path {
	dataRate, ackRate := pr.DownRate, pr.UpRate
	if opt.Direction == Upload {
		dataRate, ackRate = pr.UpRate, pr.DownRate
	}
	disc := aqm.MustNew(opt.Discipline, aqm.Config{
		LimitPackets: pr.QueuePackets,
		ECN:          opt.ECN,
	}, eng.Rand())
	path := NewPath(eng, PathConfig{
		Forward: LinkConfig{
			Rate:       dataRate,
			Delay:      pr.RTT / 2,
			Jitter:     pr.Jitter,
			LossRate:   pr.LossRate,
			Discipline: disc,
		},
		Reverse: LinkConfig{
			Rate:  ackRate,
			Delay: pr.RTT / 2,
		},
	})
	pr.Mod.apply(eng, path.Forward, dataRate, eng.Rand())
	return path
}

// StartDynamicBandwidth toggles the link rate between lo and hi every
// period, reproducing the paper's "dynamic bandwidth" scenario (§4.3:
// 10↔50 Mbps every 20 s).
func StartDynamicBandwidth(eng *sim.Engine, l *Link, lo, hi units.Rate, period units.Duration) {
	high := false
	var flip func()
	flip = func() {
		if high {
			l.SetRate(lo)
		} else {
			l.SetRate(hi)
		}
		high = !high
		eng.Schedule(period, flip)
	}
	eng.Schedule(period, flip)
}
