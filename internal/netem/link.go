// Package netem emulates network paths: rate-limited links with queueing
// disciplines, propagation delay, jitter, random loss, and time-varying
// bandwidth. It is the WAN-emulator ("tc" box) of the paper's testbed plus
// the production-network models (LAN, cable, WiFi, LTE).
package netem

import (
	"element/internal/aqm"
	"element/internal/pkt"
	"element/internal/sim"
	"element/internal/telemetry"
	"element/internal/units"
)

// Sink consumes packets delivered by a link.
type Sink func(p *pkt.Packet)

// LinkStats are cumulative counters for one link direction.
type LinkStats struct {
	Sent      int // packets handed to Send
	Delivered int // packets delivered to the sink
	Lost      int // packets dropped by random loss
	Bytes     int // payload+header bytes delivered
}

// Link is a unidirectional rate-limited link: an AQM-managed queue feeding
// a serializing transmitter, followed by propagation delay, optional jitter,
// and i.i.d. random loss. Rate changes (SetRate) take effect at the next
// packet serialization, which matches how token-bucket emulators behave.
type Link struct {
	eng   *sim.Engine
	rate  units.Rate
	delay units.Duration
	// jitter adds uniform [0, jitter) extra propagation per packet while
	// preserving packet order (delivery times are made monotonic).
	jitter   units.Duration
	lossRate float64
	disc     aqm.Discipline
	sink     Sink

	busy         bool
	lastDelivery units.Time
	stats        LinkStats

	// Telemetry handles (nil when uninstrumented).
	telem       *telemetry.Scope
	deliveredC  *telemetry.Counter
	deliveredBC *telemetry.Counter
	lostC       *telemetry.Counter
	busySecsC   *telemetry.Counter
	rateG       *telemetry.Gauge

	onLost Sink // tap: packets dropped by random loss after serialization
}

// Tap attaches per-packet observers: queue wraps the discipline so every
// enqueue/dequeue is seen (see aqm.AttachTap), and lost (optional) fires
// for packets dropped by random loss after serialization. The waterfall
// attribution uses the pair to time link-queue residency and to mark wire
// drops. Call before traffic starts.
func (l *Link) Tap(queue aqm.TapHooks, lost Sink) {
	l.disc = aqm.AttachTap(l.disc, queue)
	l.onLost = lost
}

// Instrument records the link's activity under linkSc (delivery/loss
// counters, serialization busy time for utilization, rate changes) and
// wraps its queueing discipline so enqueue/drop/mark/sojourn are recorded
// under queueSc. Nil scopes disable the respective half.
func (l *Link) Instrument(linkSc, queueSc *telemetry.Scope) {
	l.telem = linkSc
	l.deliveredC = linkSc.Counter("delivered_packets")
	l.deliveredBC = linkSc.Counter("delivered_bytes")
	l.lostC = linkSc.Counter("lost_packets")
	l.busySecsC = linkSc.Counter("busy_seconds")
	l.rateG = linkSc.Gauge("rate_bps")
	l.rateG.Set(float64(l.rate))
	l.disc = aqm.Instrument(l.disc, queueSc)
}

// LinkConfig configures a Link.
type LinkConfig struct {
	Rate     units.Rate     // serialization rate (required)
	Delay    units.Duration // one-way propagation delay
	Jitter   units.Duration // max extra per-packet delay (0 = none)
	LossRate float64        // i.i.d. drop probability in [0, 1)
	// Discipline is the queue in front of the transmitter. Nil gets a
	// default pfifo_fast-like FIFO.
	Discipline aqm.Discipline
}

// NewLink creates a link on eng delivering packets to sink.
func NewLink(eng *sim.Engine, cfg LinkConfig, sink Sink) *Link {
	d := cfg.Discipline
	if d == nil {
		d = aqm.NewFIFO(aqm.Config{})
	}
	return &Link{
		eng:      eng,
		rate:     cfg.Rate,
		delay:    cfg.Delay,
		jitter:   cfg.Jitter,
		lossRate: cfg.LossRate,
		disc:     d,
		sink:     sink,
	}
}

// Send offers a packet to the link. Packets rejected by the queue are
// dropped silently (the queue's stats record the drop).
func (l *Link) Send(p *pkt.Packet) {
	l.stats.Sent++
	if !l.disc.Enqueue(p, l.eng.Now()) {
		return
	}
	if !l.busy {
		l.transmitNext()
	}
}

// transmitNext pulls the next packet from the queue and serializes it.
func (l *Link) transmitNext() {
	p := l.disc.Dequeue(l.eng.Now())
	if p == nil {
		l.busy = false
		return
	}
	l.busy = true
	tx := l.rate.TransmissionTime(p.Size())
	l.busySecsC.Add(tx.Seconds())
	l.eng.Schedule(tx, func() {
		l.deliver(p)
		l.transmitNext()
	})
}

// deliver applies loss, propagation and jitter to a serialized packet.
func (l *Link) deliver(p *pkt.Packet) {
	if l.lossRate > 0 && l.eng.Rand().Float64() < l.lossRate {
		l.stats.Lost++
		if l.telem != nil {
			l.lostC.Inc()
			l.telem.Event(telemetry.SevInfo, "random_loss",
				telemetry.F("seq", float64(p.Seq)), telemetry.F("bytes", float64(p.Size())))
		}
		if l.onLost != nil {
			l.onLost(p)
		}
		return
	}
	d := l.delay
	if l.jitter > 0 {
		d += units.Duration(l.eng.Rand().Int63n(int64(l.jitter)))
	}
	at := l.eng.Now().Add(d)
	// Preserve FIFO delivery order under jitter.
	if at < l.lastDelivery {
		at = l.lastDelivery
	}
	l.lastDelivery = at
	size := p.Size()
	l.eng.At(at, func() {
		l.stats.Delivered++
		l.stats.Bytes += size
		if l.telem != nil {
			l.deliveredC.Inc()
			l.deliveredBC.Add(float64(size))
		}
		l.sink(p)
	})
}

// SetRate changes the link rate; it takes effect for the next serialized
// packet.
func (l *Link) SetRate(r units.Rate) {
	if l.telem != nil && r != l.rate {
		l.rateG.Set(float64(r))
		l.telem.Event(telemetry.SevInfo, "rate_change",
			telemetry.F("from_bps", float64(l.rate)), telemetry.F("to_bps", float64(r)))
		l.telem.Sample("rate", telemetry.F("bps", float64(r)))
	}
	l.rate = r
}

// Rate reports the current link rate.
func (l *Link) Rate() units.Rate { return l.rate }

// SetLossRate changes the i.i.d. loss probability.
func (l *Link) SetLossRate(p float64) { l.lossRate = p }

// LossRate reports the current i.i.d. loss probability.
func (l *Link) LossRate() float64 { return l.lossRate }

// SetDelay changes the propagation delay for subsequently delivered packets.
func (l *Link) SetDelay(d units.Duration) { l.delay = d }

// Delay reports the configured propagation delay.
func (l *Link) Delay() units.Duration { return l.delay }

// QueueLen reports the number of packets waiting in the queue.
func (l *Link) QueueLen() int { return l.disc.Len() }

// QueueBytes reports the bytes waiting in the queue.
func (l *Link) QueueBytes() int { return l.disc.Bytes() }

// Stats reports the link's cumulative counters.
func (l *Link) Stats() LinkStats { return l.stats }

// QueueStats reports the queue discipline's counters.
func (l *Link) QueueStats() aqm.Stats { return l.disc.Stats() }

// Discipline exposes the queue for inspection.
func (l *Link) Discipline() aqm.Discipline { return l.disc }
