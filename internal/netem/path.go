package netem

import (
	"element/internal/aqm"
	"element/internal/pkt"
	"element/internal/sim"
	"element/internal/units"
)

// Path is a duplex network path: a forward (data) link and a reverse (ACK)
// link. Endpoints attach with AttachA/AttachB; packets sent with SendAtoB
// traverse the forward link, SendBtoA the reverse link.
//
// The forward link is the bottleneck under test (its queue is the AQM being
// evaluated); the reverse link gets a plain FIFO, like the paper's testbed
// where the return path is uncongested.
type Path struct {
	Forward *Link
	Reverse *Link

	sinkB Sink
	sinkA Sink
}

// PathConfig configures a duplex path.
type PathConfig struct {
	// Rate/Delay/Jitter/Loss/Discipline apply to the forward link.
	Forward LinkConfig
	// ReverseRate defaults to the forward rate if zero. The reverse delay
	// defaults to the forward delay (symmetric RTT).
	Reverse LinkConfig
}

// NewPath builds a duplex path on eng. Sinks may be attached later.
func NewPath(eng *sim.Engine, cfg PathConfig) *Path {
	p := &Path{}
	if cfg.Reverse.Rate == 0 {
		cfg.Reverse.Rate = cfg.Forward.Rate
	}
	if cfg.Reverse.Delay == 0 {
		cfg.Reverse.Delay = cfg.Forward.Delay
	}
	if cfg.Reverse.Discipline == nil {
		cfg.Reverse.Discipline = aqm.NewFIFO(aqm.Config{})
	}
	p.Forward = NewLink(eng, cfg.Forward, func(q *pkt.Packet) {
		if p.sinkB != nil {
			p.sinkB(q)
		}
	})
	p.Reverse = NewLink(eng, cfg.Reverse, func(q *pkt.Packet) {
		if p.sinkA != nil {
			p.sinkA(q)
		}
	})
	return p
}

// AttachA registers the sink for packets arriving at the A side (i.e.
// delivered by the reverse link).
func (p *Path) AttachA(s Sink) { p.sinkA = s }

// AttachB registers the sink for packets arriving at the B side.
func (p *Path) AttachB(s Sink) { p.sinkB = s }

// WrapSinks interposes wrap around the currently attached sinks: the
// B-side sink (fed by the forward link, reverse=false) and the A-side
// sink (fed by the reverse link, reverse=true). The links read p.sinkA/
// p.sinkB at delivery time, so wrapping works even after endpoints have
// attached — the fault injector uses it to reorder, drop, or batch
// packets between the link and the endpoint without touching either.
func (p *Path) WrapSinks(wrap func(reverse bool, s Sink) Sink) {
	if p.sinkB != nil {
		p.sinkB = wrap(false, p.sinkB)
	}
	if p.sinkA != nil {
		p.sinkA = wrap(true, p.sinkA)
	}
}

// SendAtoB transmits a packet from A toward B over the forward link.
func (p *Path) SendAtoB(q *pkt.Packet) { p.Forward.Send(q) }

// SendBtoA transmits a packet from B toward A over the reverse link.
func (p *Path) SendBtoA(q *pkt.Packet) { p.Reverse.Send(q) }

// RTT reports the base (unloaded) round-trip propagation time.
func (p *Path) RTT() units.Duration { return p.Forward.Delay() + p.Reverse.Delay() }

// BDPBytes reports the forward bandwidth-delay product in bytes.
func (p *Path) BDPBytes() int {
	return int(p.Forward.Rate().BytesPerSecond() * p.RTT().Seconds())
}
