package overload

import "testing"

// high/low are pressure snapshots on either side of the default
// deadband for a governor with a RetainedSamples budget of 100.
var (
	high = Usage{RetainedSamples: 150} // pressure 1.5
	mid  = Usage{RetainedSamples: 90}  // pressure 0.9, inside the deadband
	low  = Usage{RetainedSamples: 10}  // pressure 0.1
)

func testConfig(step int) Config {
	return Config{
		Budgets:   Budgets{RetainedSamples: 100},
		HoldTicks: 4,
		StepFlows: step,
		Seed:      42,
	}
}

func TestGovernorDemotesUnderPressureAndRecovers(t *testing.T) {
	g := New(testConfig(2), 8)
	if got := g.TierCounts()[TierFull]; got != 8 {
		t.Fatalf("initial full count = %d, want 8", got)
	}
	tr := g.Tick(high)
	if len(tr) != 2 {
		t.Fatalf("transitions = %d, want StepFlows = 2", len(tr))
	}
	for _, x := range tr {
		if x.From != TierFull || x.To != TierSketch {
			t.Fatalf("demotion %+v, want full→sketch", x)
		}
		if g.Tier(x.Flow) != TierSketch {
			t.Fatalf("flow %d tier = %v after demotion", x.Flow, g.Tier(x.Flow))
		}
	}
	if g.Sheds() != 2 {
		t.Fatalf("Sheds = %d, want 2", g.Sheds())
	}

	// Inside the deadband nothing moves, in either direction.
	if tr := g.Tick(mid); len(tr) != 0 {
		t.Fatalf("deadband tick produced %d transitions", len(tr))
	}

	// Sustained recovery promotes everyone back to full coverage.
	for i := 0; i < 100; i++ {
		g.Tick(low)
	}
	if got := g.TierCounts()[TierFull]; got != 8 {
		t.Fatalf("full count after recovery = %d, want 8 (counts %v)", got, g.TierCounts())
	}
	if g.Reclaims() != 2 {
		t.Fatalf("Reclaims = %d, want 2", g.Reclaims())
	}
}

func TestGovernorHoldPreventsImmediateReversal(t *testing.T) {
	g := New(testConfig(8), 8)
	demoted := map[int]int{} // flow → tick of demotion
	tr := g.Tick(high)
	if len(tr) != 8 {
		t.Fatalf("demotions = %d, want all 8", len(tr))
	}
	for _, x := range tr {
		demoted[x.Flow] = g.Ticks()
	}
	// Pressure collapses immediately; no flow may promote before its
	// hold (HoldTicks + jitter ∈ [4, 8) ticks) expires.
	for i := 0; i < 20; i++ {
		for _, x := range g.Tick(low) {
			if held := g.Ticks() - demoted[x.Flow]; held < 4 {
				t.Fatalf("flow %d reversed after %d ticks, hold is ≥ 4", x.Flow, held)
			}
		}
	}
}

func TestGovernorHotFlowsShedLastRestoreFirst(t *testing.T) {
	g := New(testConfig(6), 8)
	g.SetHot(3, true)
	g.SetHot(5, true)
	tr := g.Tick(high)
	if len(tr) != 6 {
		t.Fatalf("demotions = %d, want 6", len(tr))
	}
	for _, x := range tr {
		if x.Flow == 3 || x.Flow == 5 {
			t.Fatalf("hot flow %d demoted while cold flows remain", x.Flow)
		}
	}
	// Park everything, then recover: the hot flows must come back first.
	for i := 0; i < 40; i++ {
		g.Tick(high)
	}
	var first []int
	for i := 0; i < 100 && len(first) < 2; i++ {
		for _, x := range g.Tick(low) {
			first = append(first, x.Flow)
		}
	}
	if len(first) < 2 || !isHot(first[0]) || !isHot(first[1]) {
		t.Fatalf("first promotions = %v, want the hot flows 3 and 5", first)
	}
}

func isHot(f int) bool { return f == 3 || f == 5 }

func TestGovernorNeverLeavesLadder(t *testing.T) {
	g := New(testConfig(8), 4)
	for i := 0; i < 200; i++ {
		g.Tick(high)
	}
	counts := g.TierCounts()
	if counts[TierParked] != 4 {
		t.Fatalf("sustained overload should park everyone: %v", counts)
	}
	// Parked flows are terminal for demotion — more pressure is a no-op.
	if tr := g.Tick(high); len(tr) != 0 {
		t.Fatalf("parked fleet still produced transitions: %v", tr)
	}
	for i := 0; i < 200; i++ {
		g.Tick(low)
	}
	if got := g.TierCounts()[TierFull]; got != 4 {
		t.Fatalf("sustained recovery should restore everyone: %v", g.TierCounts())
	}
	if tr := g.Tick(low); len(tr) != 0 {
		t.Fatalf("fully restored fleet still produced transitions: %v", tr)
	}
}

func TestGovernorDeterministicAcrossRuns(t *testing.T) {
	run := func() []Transition {
		g := New(testConfig(3), 16)
		g.SetHot(7, true)
		var all []Transition
		for i := 0; i < 120; i++ {
			var u Usage
			switch {
			case i%30 < 12:
				u = high
			case i%30 < 20:
				u = mid
			default:
				u = low
			}
			all = append(all, g.Tick(u)...)
		}
		return all
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs diverged in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("transition %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
	if len(a) == 0 {
		t.Fatal("trajectory produced no transitions; test is vacuous")
	}
}

func TestGovernorResumeWithTiers(t *testing.T) {
	start := []Tier{TierFull, TierSketch, TierParked, TierCounters, 200}
	g := NewWithTiers(testConfig(1), start)
	want := [NumTiers]int{1, 1, 1, 2} // the out-of-range tier clamps to parked
	if got := g.TierCounts(); got != want {
		t.Fatalf("resumed counts = %v, want %v", got, want)
	}
	if g.Tier(4) != TierParked {
		t.Fatalf("out-of-range tier = %v, want parked", g.Tier(4))
	}
	// Promotion restores the most-degraded flow first.
	tr := g.Tick(low)
	if len(tr) != 1 || tr[0].From != TierParked {
		t.Fatalf("first resume promotion = %+v, want from parked", tr)
	}
}

func TestGovernorLiveFullBudget(t *testing.T) {
	cfg := Config{Budgets: Budgets{LiveFull: 4}, HoldTicks: 2, StepFlows: 1, Seed: 7}
	g := New(cfg, 8)
	// 8 live full monitors against a budget of 4: pressure 2.0 from the
	// governor's own tier census, no external usage needed.
	for i := 0; i < 100; i++ {
		g.Tick(Usage{})
	}
	// Demotion stops once 4/4 = 1.0 no longer exceeds HighWater, and
	// 1.0 ≥ LowWater keeps the survivors in the deadband: the census
	// settles exactly at the budget, with no flapping around it.
	if got := g.TierCounts()[TierFull]; got != 4 {
		t.Fatalf("full count settled at %d, want the LiveFull budget 4", got)
	}
	if p := g.Pressure(Usage{}); p != 1.0 {
		t.Fatalf("settled pressure = %v, want exactly 1.0", p)
	}
}
