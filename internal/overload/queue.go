package overload

import (
	"element/internal/telemetry/stream"
	"element/internal/units"
)

// Queue is the backpressured export path: a bounded ring of sealed
// windows in front of a stream.Sink, so a stalled or flapping sink
// degrades into queueing, retry and audited drops instead of blocking
// the barrier loop or silently losing windows. It implements
// stream.Sink itself — the fleet splices it between the streaming
// pipeline and the real exporter.
//
// Failure handling is a small deterministic state machine: delivery
// failures back off exponentially (capped, seed-jittered so retries from
// many fleets don't synchronize), a run of consecutive failures trips a
// circuit breaker that stops hammering a wedged sink until a cooloff
// passes, and entries older than the deadline are dropped — counted,
// never silent. The accounting invariant the tests pin:
//
//	Enqueued == Delivered + Dropped + Deadlined + Depth()
//
// Queue is not goroutine-safe; the fleet drives it from the barrier
// loop, which also keeps its behavior shard-count-invariant.
type Queue struct {
	cfg  QueueConfig
	sink stream.Sink

	ring  []entry
	head  int // oldest entry
	depth int
	now   units.Time

	// Retry/backoff + breaker state.
	backoff     units.Duration
	nextAttempt units.Time
	consecFails int
	open        bool // breaker open: no attempts until reopenAt
	reopenAt    units.Time
	rngCtr      uint64

	stats QueueStats
}

// entry is one queued sealed window, deep-copied at enqueue because the
// streaming layer recycles its sealed slots after release.
type entry struct {
	names []string
	win   stream.Window
	at    units.Time // enqueue time, for the deadline
}

// QueueConfig parameterizes the export queue. Zero values select the
// defaults noted per field.
type QueueConfig struct {
	// Capacity bounds the queue depth; on overflow the oldest window is
	// dropped and counted (default 64).
	Capacity int
	// Deadline drops entries that have waited longer (default 5 s):
	// a window stuck behind a dead sink eventually stops being worth
	// delivering, but its loss is always counted.
	Deadline units.Duration
	// RetryBase is the first retry delay after a failure (default 50 ms).
	RetryBase units.Duration
	// RetryMax caps the exponential backoff (default 2 s).
	RetryMax units.Duration
	// RetryJitter is the ± fraction applied to each backoff (default
	// 0.2), derived from Seed so runs stay reproducible.
	RetryJitter float64
	// BreakerFailures is the consecutive-failure run that trips the
	// circuit breaker (default 5).
	BreakerFailures int
	// BreakerCooloff is how long a tripped breaker blocks attempts
	// before the half-open probe (default 1 s).
	BreakerCooloff units.Duration
	// Seed derives the retry jitter.
	Seed int64
}

func (c QueueConfig) normalize() QueueConfig {
	if c.Capacity <= 0 {
		c.Capacity = 64
	}
	if c.Deadline <= 0 {
		c.Deadline = 5 * units.Second
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 50 * units.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 2 * units.Second
	}
	if c.RetryJitter <= 0 {
		c.RetryJitter = 0.2
	}
	if c.BreakerFailures <= 0 {
		c.BreakerFailures = 5
	}
	if c.BreakerCooloff <= 0 {
		c.BreakerCooloff = 1 * units.Second
	}
	return c
}

// QueueStats is the queue's audit trail. Every window that entered is
// accounted for: delivered, dropped on overflow, deadlined, or still
// queued.
type QueueStats struct {
	// Enqueued counts windows accepted by ExportWindow.
	Enqueued int
	// Delivered counts windows the sink accepted.
	Delivered int
	// Retries counts failed delivery attempts (each schedules a backoff).
	Retries int
	// Dropped counts oldest-window overflow drops.
	Dropped int
	// Deadlined counts windows dropped for exceeding the queue deadline.
	Deadlined int
	// BreakerTrips counts circuit-breaker opens.
	BreakerTrips int
	// HighWater is the maximum queue depth ever observed.
	HighWater int
}

// NewQueue builds a queue of cfg.Capacity entries in front of sink. All
// ring storage is allocated up front; the steady-state enqueue/deliver
// path is allocation-free once each slot's sketch slice has grown to the
// series count.
func NewQueue(cfg QueueConfig, sink stream.Sink) *Queue {
	cfg = cfg.normalize()
	return &Queue{cfg: cfg, sink: sink, ring: make([]entry, cfg.Capacity)}
}

// ExportWindow enqueues a deep copy of w. It never returns an error —
// overflow drops the oldest queued window (counted in Dropped) rather
// than rejecting the new one or propagating a sticky failure into the
// streaming pipeline; the sink's own errors surface through the
// retry/breaker machinery in Advance.
func (q *Queue) ExportWindow(names []string, w *stream.Window) error {
	if q.depth == len(q.ring) {
		q.head = (q.head + 1) % len(q.ring)
		q.depth--
		q.stats.Dropped++
	}
	slot := &q.ring[(q.head+q.depth)%len(q.ring)]
	slot.names = names
	// Sketches is the only reference field; Sketch is a value struct, so
	// an element-wise copy into the slot's reusable slice is a deep copy.
	sk := slot.win.Sketches[:0]
	slot.win = *w
	slot.win.Sketches = append(sk, w.Sketches...)
	slot.at = q.now
	q.depth++
	q.stats.Enqueued++
	if q.depth > q.stats.HighWater {
		q.stats.HighWater = q.depth
	}
	return nil
}

// Advance moves the queue's clock to now and attempts delivery: expired
// entries are deadlined, then — breaker and backoff permitting — queued
// windows are delivered oldest-first until the sink fails. A failure
// schedules the next capped, jittered backoff; a consecutive-failure
// run trips the breaker, and the first attempt after its cooloff is the
// half-open probe (success closes the breaker, failure re-trips it).
func (q *Queue) Advance(now units.Time) {
	q.now = now
	for q.depth > 0 && now.Sub(q.ring[q.head].at) > q.cfg.Deadline {
		q.pop()
		q.stats.Deadlined++
	}
	if q.open {
		if now < q.reopenAt {
			return
		}
		q.open = false // half-open: the next attempt is the probe
	}
	if now < q.nextAttempt {
		return
	}
	for q.depth > 0 {
		e := &q.ring[q.head]
		if err := q.sink.ExportWindow(e.names, &e.win); err != nil {
			q.fail(now)
			return
		}
		q.pop()
		q.stats.Delivered++
		q.consecFails = 0
		q.backoff = 0
	}
}

// fail records one delivery failure: count the retry, grow the backoff,
// and trip the breaker on a consecutive run.
func (q *Queue) fail(now units.Time) {
	q.stats.Retries++
	q.consecFails++
	if q.backoff == 0 {
		q.backoff = q.cfg.RetryBase
	} else {
		q.backoff *= 2
		if q.backoff > q.cfg.RetryMax {
			q.backoff = q.cfg.RetryMax
		}
	}
	q.nextAttempt = now.Add(q.jittered(q.backoff))
	if q.consecFails >= q.cfg.BreakerFailures {
		q.open = true
		q.reopenAt = now.Add(q.cfg.BreakerCooloff)
		q.stats.BreakerTrips++
		q.consecFails = 0
	}
}

// jittered spreads d by ±RetryJitter using the queue's seeded counter
// stream: deterministic per run, decorrelated across fleets.
func (q *Queue) jittered(d units.Duration) units.Duration {
	q.rngCtr++
	r := splitmix64(uint64(q.cfg.Seed) + q.rngCtr*0x6a697474)
	frac := float64(r>>11) / (1 << 53) // [0, 1)
	j := 1 + q.cfg.RetryJitter*(2*frac-1)
	out := units.Duration(float64(d) * j)
	if out < 1 {
		out = 1
	}
	return out
}

// Flush is the drain path: deliver oldest-first, ignoring backoff and
// breaker state — the run is ending and this is the last chance — until
// the queue empties or the sink fails (windows are ordered, so a failed
// head blocks the rest). The return value is the number of windows left
// undelivered, which the fleet surfaces as the export-truncated marker.
func (q *Queue) Flush(now units.Time) (remaining int) {
	q.now = now
	n := q.depth
	for i := 0; i < n && q.depth > 0; i++ {
		e := &q.ring[q.head]
		if err := q.sink.ExportWindow(e.names, &e.win); err != nil {
			q.stats.Retries++
			break
		}
		q.pop()
		q.stats.Delivered++
	}
	return q.depth
}

// pop releases the oldest entry, keeping its allocated sketch slice for
// reuse by a future enqueue into the same slot.
func (q *Queue) pop() {
	q.head = (q.head + 1) % len(q.ring)
	q.depth--
}

// Depth reports the current queue depth.
func (q *Queue) Depth() int { return q.depth }

// Frac reports the fill fraction in [0, 1] — the governor's QueueFrac
// pressure input.
func (q *Queue) Frac() float64 { return float64(q.depth) / float64(len(q.ring)) }

// BreakerOpen reports whether the circuit breaker is currently open.
func (q *Queue) BreakerOpen() bool { return q.open }

// Stats reports the queue's audit counters.
func (q *Queue) Stats() QueueStats { return q.stats }
