package overload

import (
	"testing"

	"element/internal/telemetry/stream"
	"element/internal/units"
)

// BenchmarkGovernorTick measures one governor round over a 1024-flow
// fleet with the pressure cycling across the deadband, so the cost
// includes candidate selection and the transition sort — the worst
// steady-state path, pinned allocation-free in BENCH_baseline.json.
func BenchmarkGovernorTick(b *testing.B) {
	g := New(Config{
		Budgets:   Budgets{RetainedSamples: 1 << 20},
		HoldTicks: 8,
		Seed:      1,
	}, 1024)
	over := Usage{RetainedSamples: 3 << 20}
	under := Usage{RetainedSamples: 1 << 10}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i&0x1f < 16 {
			g.Tick(over)
		} else {
			g.Tick(under)
		}
	}
}

// BenchmarkExportQueue measures the enqueue→deliver round trip through
// the backpressured queue with a healthy sink: one deep-copied window
// in, one delivered out. Pinned allocation-free — the ring and each
// slot's sketch buffer are reused after warmup.
func BenchmarkExportQueue(b *testing.B) {
	sink := stream.SinkFunc(func([]string, *stream.Window) error { return nil })
	q := NewQueue(QueueConfig{Capacity: 64}, sink)
	names := []string{"snd_delay", "rcv_delay"}
	w := &stream.Window{Index: 1, Samples: 100, Sketches: make([]stream.Sketch, 2)}
	w.Sketches[0].Observe(0.01)
	w.Sketches[1].Observe(0.02)
	// Warm every ring slot so steady state reuses grown sketch buffers.
	for i := 0; i < 128; i++ {
		q.ExportWindow(names, w)
		q.Advance(units.Time(i) * units.Time(units.Millisecond))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Index = int64(i)
		q.ExportWindow(names, w)
		q.Advance(units.Time(i) * units.Time(units.Millisecond))
	}
}
