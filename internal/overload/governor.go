// Package overload keeps the monitor from becoming the thing data waits
// on. The paper's premise — attributing where slow data waits — only
// survives production if an always-on fleet degrades predictably under
// memory pressure, export-sink outages and monitor storms. Two pieces
// live here: a deterministic degradation governor (this file) that walks
// flows down a coverage ladder when hierarchical budgets are exceeded,
// and a backpressured export queue (queue.go) that absorbs sink outages
// with retry, backoff and a circuit breaker.
//
// The governor's contract mirrors the estimators' bounded-or-flagged
// rule: shedding coverage is allowed, shedding it silently is not. Every
// demotion the fleet applies widens the affected flow's error bounds and
// counts a Sheds anomaly (core.SenderTracker.Shed); the governor itself
// only decides WHO degrades WHEN, deterministically — same seed, same
// pressure trajectory, same decisions, at any shard count.
package overload

import "sort"

// Tier is a flow's rung on the degradation ladder, cheapest coverage
// last. The zero value is full coverage, so an ungoverned fleet needs no
// initialization.
type Tier uint8

// Ladder rungs, most to least coverage.
const (
	// TierFull runs the whole stack: tracker, minimizer, waterfall spans,
	// streaming windows, escalation, retained samples.
	TierFull Tier = iota
	// TierSketch keeps polling and streaming sketch aggregates but stops
	// retaining per-sample logs and escalated raw series.
	TierSketch
	// TierCounters keeps the tracker polling (anomaly audit, counters)
	// but contributes nothing to streaming windows.
	TierCounters
	// TierParked suspends polling entirely; only the flow's accumulated
	// state survives. Unparking folds the unobserved window into the
	// flow's error bounds like a restore outage.
	TierParked

	// NumTiers is the ladder height.
	NumTiers = 4
)

// String reports the conventional lowercase name.
func (t Tier) String() string {
	switch t {
	case TierFull:
		return "full"
	case TierSketch:
		return "sketch"
	case TierCounters:
		return "counters"
	case TierParked:
		return "parked"
	}
	return "unknown"
}

// Budgets are the hierarchical resource caps the governor defends. A
// zero budget disables that dimension (never "budget of zero").
type Budgets struct {
	// LiveFull caps the number of flows at TierFull.
	LiveFull int
	// RetainedSamples caps fleet-wide retained measurement-log entries
	// plus unmatched FIFO records.
	RetainedSamples int
	// SketchBytes caps the streaming layer's window+sketch footprint.
	SketchBytes int
	// ExportBytesPerSec caps the sustained export rate to the sink.
	ExportBytesPerSec float64
}

// Usage is one metering snapshot, gathered by the fleet at a barrier
// from the existing ring/FIFO/top-K structures. Every field must be
// derived shard-invariantly (per-flow state, or the canonical shard) so
// governor decisions are byte-identical at any shard count.
type Usage struct {
	// RetainedSamples is the fleet-wide retained sample/record count.
	RetainedSamples int
	// SketchBytes is the streaming layer's current footprint.
	SketchBytes int
	// ExportBytesPerSec is the recent export rate.
	ExportBytesPerSec float64
	// QueueFrac is the export queue's fill fraction in [0, 1]; it feeds
	// pressure directly (a full queue is pressure 1.0 regardless of
	// budgets) so a wedged sink degrades collection before dropping data.
	QueueFrac float64
	// LiveFull, when > 0, overrides the governor's own full-tier census
	// for the LiveFull budget. The scale fleet uses it: there the
	// full-granularity population is the escalated-tracker set, which the
	// escalation trigger moves in and out of independently of ladder
	// transitions, so the governor's tier counts undercount what is
	// actually live at full granularity.
	LiveFull int
}

// Config parameterizes the governor. Zero values select the defaults
// noted per field.
type Config struct {
	// Budgets are the resource caps (zero dimension = unlimited).
	Budgets Budgets
	// HighWater is the pressure above which flows demote (default 1.0 —
	// demote only past budget).
	HighWater float64
	// LowWater is the pressure below which flows promote (default
	// 0.75·HighWater). The (LowWater, HighWater) deadband is the
	// hysteresis that keeps the ladder from flapping.
	LowWater float64
	// HoldTicks is the minimum governor ticks between one flow's
	// consecutive transitions; each flow's effective hold is jittered to
	// HoldTicks + seed-derived[0, HoldTicks) so a cohort demoted together
	// does not promote together (default 8).
	HoldTicks int
	// StepFlows caps transitions per tick (default max(1, flows/16)):
	// pressure relief is gradual, never a cliff.
	StepFlows int
	// Seed derives the per-flow jitter. Decisions are a pure function of
	// (Seed, flow ids, pressure trajectory).
	Seed int64
}

func (c Config) normalize(flows int) Config {
	if c.HighWater <= 0 {
		c.HighWater = 1.0
	}
	if c.LowWater <= 0 || c.LowWater >= c.HighWater {
		c.LowWater = 0.75 * c.HighWater
	}
	if c.HoldTicks <= 0 {
		c.HoldTicks = 8
	}
	if c.StepFlows <= 0 {
		c.StepFlows = flows / 16
		if c.StepFlows < 1 {
			c.StepFlows = 1
		}
	}
	return c
}

// Transition is one governor decision: move Flow from tier From to To.
// The fleet applies it — shedding or restoring the flow's machinery and
// folding the coverage change into its error bounds.
type Transition struct {
	Flow     int
	From, To Tier
}

// Governor walks flows up and down the degradation ladder from metered
// budget pressure. It is not goroutine-safe: the fleet ticks it at the
// single-threaded barrier between shard slices, which is also what makes
// its decisions shard-count-invariant.
type Governor struct {
	cfg   Config
	tiers []Tier
	hot   []bool   // escalated flows: shed last, restored first
	jit   []uint32 // per-flow seed-derived jitter (ordering + hold)
	hold  []int    // tick index before which the flow may not transition

	tick         int
	counts       [NumTiers]int
	sheds        int
	reclaims     int
	lastPressure float64

	// Reused across ticks so the steady-state path never allocates.
	cand   []int
	trans  []Transition
	sorter flowSorter
}

// New builds a governor over flows flows, all starting at TierFull.
func New(cfg Config, flows int) *Governor {
	return NewWithTiers(cfg, make([]Tier, flows))
}

// NewWithTiers builds a governor with explicit starting tiers — the
// snapshot/resume path, where a fleet restored mid-overload must land in
// the tier it was shed to, not silently reset to full coverage. Tiers
// outside the ladder clamp to TierParked.
func NewWithTiers(cfg Config, tiers []Tier) *Governor {
	n := len(tiers)
	g := &Governor{
		cfg:   cfg.normalize(n),
		tiers: make([]Tier, n),
		hot:   make([]bool, n),
		jit:   make([]uint32, n),
		hold:  make([]int, n),
		cand:  make([]int, 0, n),
		trans: make([]Transition, 0, n),
	}
	for i, t := range tiers {
		if t >= NumTiers {
			t = TierParked
		}
		g.tiers[i] = t
		g.counts[t]++
		g.jit[i] = uint32(splitmix64(uint64(g.cfg.Seed) + uint64(i)*0x6f766c64))
	}
	g.sorter.g = g
	return g
}

// splitmix64 is the same stateless mixer the sim engine derives its
// per-connection streams from: jitter depends only on (seed, flow id).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Pressure reports the scalar budget pressure for a usage snapshot: the
// maximum utilization across all configured dimensions, plus the export
// queue's fill fraction. 1.0 means some budget is exactly spent.
func (g *Governor) Pressure(u Usage) float64 {
	p := u.QueueFrac
	if b := g.cfg.Budgets.LiveFull; b > 0 {
		live := g.counts[TierFull]
		if u.LiveFull > 0 {
			live = u.LiveFull
		}
		if v := float64(live) / float64(b); v > p {
			p = v
		}
	}
	if b := g.cfg.Budgets.RetainedSamples; b > 0 {
		if v := float64(u.RetainedSamples) / float64(b); v > p {
			p = v
		}
	}
	if b := g.cfg.Budgets.SketchBytes; b > 0 {
		if v := float64(u.SketchBytes) / float64(b); v > p {
			p = v
		}
	}
	if b := g.cfg.Budgets.ExportBytesPerSec; b > 0 {
		if v := u.ExportBytesPerSec / b; v > p {
			p = v
		}
	}
	return p
}

// Tick runs one governor round against a usage snapshot and returns the
// transitions to apply (valid until the next Tick; the slice is reused).
// Above HighWater flows demote one rung; below LowWater they promote one
// rung; inside the deadband nothing moves. At most StepFlows flows
// transition per tick, each then held for its jittered hold window —
// together with the deadband this is the flap-free guarantee the
// property tests pin.
func (g *Governor) Tick(u Usage) []Transition {
	g.tick++
	p := g.Pressure(u)
	g.lastPressure = p
	g.trans = g.trans[:0]
	switch {
	case p > g.cfg.HighWater:
		g.step(true)
	case p < g.cfg.LowWater:
		g.step(false)
	}
	return g.trans
}

// step selects and applies up to StepFlows one-rung transitions in the
// given direction. Demotion sheds the cheapest coverage loss first:
// non-escalated flows before escalated ("the PR 6 escalators in
// reverse" — a flow the escalator flagged as interesting is the last to
// lose coverage), least-degraded tiers first, jitter and id breaking
// ties. Promotion restores the worst loss first: escalated flows, then
// most-degraded tiers.
func (g *Governor) step(demote bool) {
	g.cand = g.cand[:0]
	for i, t := range g.tiers {
		if g.hold[i] > g.tick {
			continue
		}
		if demote {
			if t >= TierParked {
				continue
			}
		} else if t == TierFull {
			continue
		}
		g.cand = append(g.cand, i)
	}
	if len(g.cand) == 0 {
		return
	}
	g.sorter.idx = g.cand
	g.sorter.demote = demote
	sort.Sort(&g.sorter)
	n := g.cfg.StepFlows
	if n > len(g.cand) {
		n = len(g.cand)
	}
	for _, f := range g.cand[:n] {
		from := g.tiers[f]
		to := from + 1
		if !demote {
			to = from - 1
		}
		g.tiers[f] = to
		g.counts[from]--
		g.counts[to]++
		g.hold[f] = g.tick + g.holdFor(f)
		if demote {
			g.sheds++
		} else {
			g.reclaims++
		}
		g.trans = append(g.trans, Transition{Flow: f, From: from, To: to})
	}
}

// holdFor is flow f's jittered transition hold in ticks.
func (g *Governor) holdFor(f int) int {
	return g.cfg.HoldTicks + int(g.jit[f])%g.cfg.HoldTicks
}

// Tier reports flow f's current rung.
func (g *Governor) Tier(f int) Tier { return g.tiers[f] }

// SetHot marks flow f as escalated (the streaming escalator found it
// interesting): hot flows shed coverage last and regain it first.
func (g *Governor) SetHot(f int, hot bool) { g.hot[f] = hot }

// Flows reports the governed flow count.
func (g *Governor) Flows() int { return len(g.tiers) }

// TierCounts reports the current population of each rung.
func (g *Governor) TierCounts() [NumTiers]int { return g.counts }

// Ticks reports how many governor rounds have run.
func (g *Governor) Ticks() int { return g.tick }

// Sheds reports total demotions applied.
func (g *Governor) Sheds() int { return g.sheds }

// Reclaims reports total promotions applied.
func (g *Governor) Reclaims() int { return g.reclaims }

// LastPressure reports the pressure computed by the latest Tick.
func (g *Governor) LastPressure() float64 { return g.lastPressure }

// flowSorter orders transition candidates deterministically. It lives in
// the Governor and sorts an index slice in place so the steady-state
// tick path stays allocation-free.
type flowSorter struct {
	g      *Governor
	idx    []int
	demote bool
}

func (s *flowSorter) Len() int      { return len(s.idx) }
func (s *flowSorter) Swap(i, j int) { s.idx[i], s.idx[j] = s.idx[j], s.idx[i] }
func (s *flowSorter) Less(i, j int) bool {
	a, b := s.idx[i], s.idx[j]
	g := s.g
	if g.hot[a] != g.hot[b] {
		if s.demote {
			return !g.hot[a] // cold flows shed first
		}
		return g.hot[a] // hot flows restore first
	}
	if g.tiers[a] != g.tiers[b] {
		if s.demote {
			return g.tiers[a] < g.tiers[b] // least-degraded sheds first
		}
		return g.tiers[a] > g.tiers[b] // most-degraded restores first
	}
	if g.jit[a] != g.jit[b] {
		return g.jit[a] < g.jit[b]
	}
	return a < b
}
