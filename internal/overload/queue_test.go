package overload

import (
	"errors"
	"testing"

	"element/internal/telemetry/stream"
	"element/internal/units"
)

// scriptSink is a stream.Sink whose failure behavior is driven by a
// flag; it records the window indexes it accepted.
type scriptSink struct {
	fail     bool
	accepted []int64
	attempts int
}

func (s *scriptSink) ExportWindow(names []string, w *stream.Window) error {
	s.attempts++
	if s.fail {
		return errors.New("sink wedged")
	}
	s.accepted = append(s.accepted, w.Index)
	return nil
}

func win(i int64) *stream.Window {
	return &stream.Window{Index: i, Samples: uint64(i) + 1, Sketches: make([]stream.Sketch, 2)}
}

// invariant checks the queue's full-accounting contract.
func invariant(t *testing.T, q *Queue) {
	t.Helper()
	st := q.Stats()
	if st.Enqueued != st.Delivered+st.Dropped+st.Deadlined+q.Depth() {
		t.Fatalf("accounting broken: %+v with depth %d", st, q.Depth())
	}
}

func TestQueueDeliversInOrder(t *testing.T) {
	sink := &scriptSink{}
	q := NewQueue(QueueConfig{Capacity: 8}, sink)
	names := []string{"a", "b"}
	for i := int64(0); i < 5; i++ {
		if err := q.ExportWindow(names, win(i)); err != nil {
			t.Fatalf("enqueue: %v", err)
		}
	}
	if q.Depth() != 5 {
		t.Fatalf("depth = %d, want 5", q.Depth())
	}
	q.Advance(units.Time(units.Second))
	if len(sink.accepted) != 5 {
		t.Fatalf("delivered %d windows, want 5", len(sink.accepted))
	}
	for i, idx := range sink.accepted {
		if idx != int64(i) {
			t.Fatalf("delivery order %v, want 0..4", sink.accepted)
		}
	}
	if st := q.Stats(); st.HighWater != 5 || st.Delivered != 5 {
		t.Fatalf("stats = %+v", st)
	}
	invariant(t, q)
}

func TestQueueDeepCopiesWindows(t *testing.T) {
	sink := &scriptSink{}
	q := NewQueue(QueueConfig{Capacity: 4}, sink)
	w := win(7)
	w.Sketches[0].Observe(1.5)
	q.ExportWindow([]string{"a", "b"}, w)
	// The streaming layer recycles sealed slots: mutate the source after
	// enqueue and make sure the queued copy is unaffected.
	w.Index = 999
	w.Sketches[0].Observe(100)
	var got stream.Window
	probe := stream.SinkFunc(func(_ []string, pw *stream.Window) error {
		got = *pw
		got.Sketches = append([]stream.Sketch(nil), pw.Sketches...)
		return nil
	})
	q2 := *q
	q2.sink = probe
	q2.Advance(0)
	if got.Index != 7 {
		t.Fatalf("queued window index = %d, want the pre-mutation 7", got.Index)
	}
	if n := got.Sketches[0].Count(); n != 1 {
		t.Fatalf("queued sketch count = %d, want the pre-mutation 1", n)
	}
}

func TestQueueOverflowDropsOldest(t *testing.T) {
	sink := &scriptSink{}
	q := NewQueue(QueueConfig{Capacity: 3}, sink)
	for i := int64(0); i < 5; i++ {
		q.ExportWindow(nil, win(i))
	}
	if st := q.Stats(); st.Dropped != 2 {
		t.Fatalf("Dropped = %d, want 2", st.Dropped)
	}
	q.Advance(units.Time(units.Second))
	wantOrder := []int64{2, 3, 4}
	if len(sink.accepted) != 3 {
		t.Fatalf("delivered %v, want %v", sink.accepted, wantOrder)
	}
	for i, idx := range sink.accepted {
		if idx != wantOrder[i] {
			t.Fatalf("delivered %v, want %v (oldest dropped first)", sink.accepted, wantOrder)
		}
	}
	invariant(t, q)
}

func TestQueueRetryBackoffBreakerAndRecovery(t *testing.T) {
	sink := &scriptSink{fail: true}
	cfg := QueueConfig{
		Capacity: 16, Deadline: 60 * units.Minute,
		RetryBase: 10 * units.Millisecond, RetryMax: 80 * units.Millisecond,
		BreakerFailures: 3, BreakerCooloff: units.Second, Seed: 9,
	}
	q := NewQueue(cfg, sink)
	for i := int64(0); i < 6; i++ {
		q.ExportWindow(nil, win(i))
	}
	// Walk time forward in 1 ms steps: the failing sink should be probed
	// on a backoff schedule, not hammered every step.
	now := units.Time(0)
	for i := 0; i < 100; i++ {
		now = now.Add(units.Millisecond)
		q.Advance(now)
	}
	st := q.Stats()
	if st.BreakerTrips == 0 {
		t.Fatalf("breaker never tripped: %+v", st)
	}
	if sink.attempts >= 50 {
		t.Fatalf("sink hammered %d times in 100 ms despite backoff+breaker", sink.attempts)
	}
	if st.Delivered != 0 || q.Depth() != 6 {
		t.Fatalf("windows leaked through a dead sink: %+v depth %d", st, q.Depth())
	}
	if !q.BreakerOpen() && st.Retries == 0 {
		t.Fatalf("no retry evidence: %+v", st)
	}
	invariant(t, q)

	// Sink recovers. After the cooloff the half-open probe succeeds and
	// the whole backlog drains — no window lost to the outage.
	sink.fail = false
	for i := 0; i < 1200; i++ {
		now = now.Add(units.Millisecond)
		q.Advance(now)
	}
	st = q.Stats()
	if st.Delivered != 6 || q.Depth() != 0 {
		t.Fatalf("backlog not drained after recovery: %+v depth %d", st, q.Depth())
	}
	if len(sink.accepted) != 6 || sink.accepted[0] != 0 {
		t.Fatalf("recovery delivery out of order: %v", sink.accepted)
	}
	invariant(t, q)
}

func TestQueueDeadlineDropsStale(t *testing.T) {
	sink := &scriptSink{fail: true}
	q := NewQueue(QueueConfig{Capacity: 8, Deadline: 100 * units.Millisecond}, sink)
	q.Advance(0)
	q.ExportWindow(nil, win(1))
	q.Advance(units.Time(50 * units.Millisecond))
	q.ExportWindow(nil, win(2))
	q.Advance(units.Time(120 * units.Millisecond))
	st := q.Stats()
	if st.Deadlined != 1 {
		t.Fatalf("Deadlined = %d, want 1 (only the first window expired)", st.Deadlined)
	}
	if q.Depth() != 1 {
		t.Fatalf("depth = %d, want 1", q.Depth())
	}
	invariant(t, q)
}

func TestQueueFlushReportsTruncation(t *testing.T) {
	sink := &scriptSink{fail: true}
	q := NewQueue(QueueConfig{Capacity: 8}, sink)
	for i := int64(0); i < 4; i++ {
		q.ExportWindow(nil, win(i))
	}
	if rem := q.Flush(0); rem != 4 {
		t.Fatalf("Flush against dead sink left %d, want 4", rem)
	}
	sink.fail = false
	if rem := q.Flush(0); rem != 0 {
		t.Fatalf("Flush after recovery left %d, want 0", rem)
	}
	if st := q.Stats(); st.Delivered != 4 {
		t.Fatalf("stats = %+v", st)
	}
	invariant(t, q)
}

func TestQueueDeterministicBackoffSchedule(t *testing.T) {
	run := func() (attempts []int) {
		sink := &scriptSink{fail: true}
		q := NewQueue(QueueConfig{
			Capacity: 4, RetryBase: 5 * units.Millisecond, RetryMax: 40 * units.Millisecond,
			BreakerFailures: 4, BreakerCooloff: 100 * units.Millisecond, Seed: 77,
		}, sink)
		q.ExportWindow(nil, win(0))
		now := units.Time(0)
		prev := 0
		for i := 0; i < 500; i++ {
			now = now.Add(units.Millisecond)
			q.Advance(now)
			if sink.attempts != prev {
				prev = sink.attempts
				attempts = append(attempts, i)
			}
		}
		return attempts
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no attempts recorded")
	}
	if len(a) != len(b) {
		t.Fatalf("schedules diverged: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("attempt %d at tick %d vs %d", i, a[i], b[i])
		}
	}
}
