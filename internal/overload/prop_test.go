package overload

import (
	"testing"

	"element/internal/core"
	"element/internal/sim"
	"element/internal/tcpinfo"
	"element/internal/units"
)

// propRng is a tiny deterministic generator for trajectory properties —
// the tests must not depend on the runtime's seeding.
type propRng struct{ s uint64 }

func (r *propRng) next() uint64 {
	r.s = splitmix64(r.s)
	return r.s
}
func (r *propRng) intn(n int) int { return int(r.next() % uint64(n)) }

// TestPropLadderFlapFree drives governors with randomized shapes through
// randomized pressure trajectories and asserts the ladder's structural
// guarantees at every tick: transitions happen only outside the
// hysteresis deadband and only in the pressure's direction, never more
// than StepFlows per tick, always exactly one rung, and no flow ever
// reverses inside its hold window — the flap-free property. Afterwards a
// sustained clean stretch must restore every flow to full coverage.
func TestPropLadderFlapFree(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		rng := &propRng{s: uint64(trial)*0x517cc1b7 + 1}
		flows := 2 + rng.intn(31)
		cfg := Config{
			Budgets:   Budgets{RetainedSamples: 100},
			HoldTicks: 1 + rng.intn(12),
			StepFlows: 1 + rng.intn(flows),
			Seed:      int64(rng.next()),
		}
		g := New(cfg, flows)
		for f := 0; f < flows; f += 1 + rng.intn(4) {
			g.SetHot(f, true)
		}
		norm := cfg.normalize(flows)

		tiers := make([]Tier, flows)
		lastTrans := make([]int, flows)
		lastDir := make([]int, flows)
		for i := range lastTrans {
			lastTrans[i] = -1 << 30
		}

		pressure := 0.5
		for tick := 1; tick <= 300; tick++ {
			// A persistent random walk with occasional regime jumps, so
			// trajectories include sustained overload, sustained calm, and
			// dithering right at the water marks.
			switch rng.intn(10) {
			case 0:
				pressure = 0.1 + float64(rng.intn(150))/100
			case 1, 2:
				pressure = norm.HighWater + (float64(rng.intn(21))-10)/100
			default:
				pressure += (float64(rng.intn(21)) - 10) / 200
			}
			if pressure < 0 {
				pressure = 0
			}
			u := Usage{QueueFrac: pressure}
			trans := g.Tick(u)
			p := g.LastPressure()

			if len(trans) > norm.StepFlows {
				t.Fatalf("trial %d tick %d: %d transitions > StepFlows %d", trial, tick, len(trans), norm.StepFlows)
			}
			if len(trans) > 0 && p <= norm.HighWater && p >= norm.LowWater {
				t.Fatalf("trial %d tick %d: transitions inside deadband (p=%v)", trial, tick, p)
			}
			seen := map[int]bool{}
			for _, x := range trans {
				if seen[x.Flow] {
					t.Fatalf("trial %d tick %d: flow %d transitioned twice in one tick", trial, tick, x.Flow)
				}
				seen[x.Flow] = true
				dir := int(x.To) - int(x.From)
				if dir != 1 && dir != -1 {
					t.Fatalf("trial %d tick %d: multi-rung jump %+v", trial, tick, x)
				}
				if dir == 1 && p <= norm.HighWater {
					t.Fatalf("trial %d tick %d: demotion at pressure %v ≤ high water", trial, tick, p)
				}
				if dir == -1 && p >= norm.LowWater {
					t.Fatalf("trial %d tick %d: promotion at pressure %v ≥ low water", trial, tick, p)
				}
				if x.From != tiers[x.Flow] {
					t.Fatalf("trial %d tick %d: transition %+v from stale tier (have %v)", trial, tick, x, tiers[x.Flow])
				}
				if x.To >= NumTiers {
					t.Fatalf("trial %d tick %d: left the ladder: %+v", trial, tick, x)
				}
				if held := tick - lastTrans[x.Flow]; held < norm.HoldTicks {
					t.Fatalf("trial %d tick %d: flow %d re-transitioned after %d < HoldTicks %d (flap)",
						trial, tick, x.Flow, held, norm.HoldTicks)
				}
				lastTrans[x.Flow] = tick
				lastDir[x.Flow] = dir
				tiers[x.Flow] = x.To
			}
			var counts [NumTiers]int
			for _, ti := range tiers {
				counts[ti]++
			}
			if counts != g.TierCounts() {
				t.Fatalf("trial %d tick %d: census drift: %v vs %v", trial, tick, counts, g.TierCounts())
			}
		}

		// Recovery guarantee: enough clean ticks restore full coverage.
		clean := Usage{QueueFrac: 0}
		need := flows*(2*norm.HoldTicks+1)*int(NumTiers)/norm.StepFlows + 10*norm.HoldTicks + 100
		for i := 0; i < need; i++ {
			g.Tick(clean)
		}
		if got := g.TierCounts()[TierFull]; got != flows {
			t.Fatalf("trial %d: %d/%d flows recovered to full after %d clean ticks (%v)",
				trial, got, flows, need, g.TierCounts())
		}
	}
}

// TestPropShedWideningMonotone is the estimator half of the ladder
// contract, driven by arbitrary shed sequences. Three properties: (1)
// every sample's error bound admits at least the guards its record sat
// through — so a record outstanding across many sheds accumulates all of
// them, which is exactly "widening is monotone while shed"; (2) every
// shed is counted in the anomaly audit; (3) after clean recovery a fresh
// sample re-tightens to the quantization floor, carrying none of the old
// debt.
func TestPropShedWideningMonotone(t *testing.T) {
	const interval = 10 * units.Millisecond
	for trial := 0; trial < 25; trial++ {
		rng := &propRng{s: uint64(trial)*0x9e3779b9 + 7}
		eng := sim.New(int64(trial + 1))
		src := &fakeShedSource{info: tcpinfo.TCPInfo{SndMSS: 1000, RcvMSS: 1000}}
		tr := core.NewSenderTrackerOpts(eng, src, core.TrackerOptions{Interval: interval, Detached: true})

		var cum uint64
		sheds := 0
		rounds := 2 + rng.intn(6)
		// Phase 1: each round pushes a record, sheds a random number of
		// guards while it is outstanding, then matches it. The sample's
		// bound must admit every guard of its own round.
		for r := 0; r < rounds; r++ {
			cum += 1000
			tr.OnWrite(cum)
			var roundGuards units.Duration
			for i, n := 0, rng.intn(4); i < n; i++ {
				guard := units.Duration(1+rng.intn(8)) * interval
				tr.Shed(guard)
				roundGuards += guard
				sheds++
			}
			eng.RunUntil(eng.Now().Add(interval))
			src.info.BytesAcked = cum
			tr.PollOnce()
			log := tr.Estimates().Log()
			m := log[len(log)-1]
			if m.ErrBound < 2*interval+roundGuards {
				t.Fatalf("trial %d round %d: bound %v does not admit the %v shed while outstanding",
					trial, r, m.ErrBound, roundGuards)
			}
			if roundGuards > 0 && m.Confidence == core.ConfidenceHigh {
				t.Fatalf("trial %d round %d: shed sample still high-confidence", trial, r)
			}
		}

		// Phase 2: one record outstanding across several separate sheds —
		// its eventual bound must admit their sum (the debt accumulates
		// monotonically; no shed is forgotten before the match).
		cum += 1000
		tr.OnWrite(cum)
		var longDebt units.Duration
		for i, n := 0, 1+rng.intn(4); i < n; i++ {
			guard := units.Duration(1+rng.intn(8)) * interval
			tr.Shed(guard)
			longDebt += guard
			sheds++
			eng.RunUntil(eng.Now().Add(interval))
			tr.PollOnce() // no progress: the record keeps waiting
		}
		eng.RunUntil(eng.Now().Add(interval))
		src.info.BytesAcked = cum
		tr.PollOnce()
		log := tr.Estimates().Log()
		if m := log[len(log)-1]; m.ErrBound < 2*interval+longDebt {
			t.Fatalf("trial %d: bound %v forgot part of the accumulated %v shed debt", trial, m.ErrBound, longDebt)
		}
		if got := tr.Anomalies().Sheds; got != sheds {
			t.Fatalf("trial %d: Sheds = %d, want %d", trial, got, sheds)
		}

		// Phase 3: recovery. Clean polls age out the holdoff; two fresh
		// write/match cycles settle the jitter-slack term, after which the
		// bound is back at the 2-interval quantization floor — zero debt.
		for i := 0; i < 6; i++ {
			eng.RunUntil(eng.Now().Add(interval))
			tr.PollOnce()
		}
		for i := 0; i < 2; i++ {
			cum += 1000
			tr.OnWrite(cum)
			eng.RunUntil(eng.Now().Add(interval))
			src.info.BytesAcked = cum
			tr.PollOnce()
		}
		log = tr.Estimates().Log()
		if m := log[len(log)-1]; m.ErrBound != 2*interval {
			t.Fatalf("trial %d: post-recovery bound %v, want the bare quantization floor %v",
				trial, m.ErrBound, 2*interval)
		}
		tr.Stop()
		eng.Shutdown()
	}
}

// fakeShedSource is a minimal scripted InfoSource for the property test
// (core's own fakeSource is package-private).
type fakeShedSource struct{ info tcpinfo.TCPInfo }

func (f *fakeShedSource) GetsockoptTCPInfo() tcpinfo.TCPInfo { return f.info }
func (f *fakeShedSource) SetSndBuf(int)                      {}
