module element

go 1.22
