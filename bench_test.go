package element

// One benchmark per table and figure of the paper's evaluation, plus
// ablation benches for the design choices called out in DESIGN.md §5.
// Each bench runs the corresponding experiment end to end in virtual time
// and reports the headline quantities via b.ReportMetric, so
// `go test -bench=. -benchmem` regenerates the whole evaluation.

import (
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"element/internal/aqm"
	"element/internal/cc"
	"element/internal/core"
	"element/internal/exp"
	"element/internal/fleet"
	"element/internal/netem"
	"element/internal/sim"
	"element/internal/stack"
	"element/internal/tcpinfo"
	"element/internal/telemetry"
	"element/internal/telemetry/stream"
	"element/internal/trace"
	"element/internal/units"
)

// benchDur keeps per-iteration simulated time moderate so -bench=. finishes
// quickly while preserving every experiment's dynamics.
const benchDur = 25 * units.Second

func cellValue(b *testing.B, r *exp.Result, row, col int) float64 {
	b.Helper()
	s := strings.Fields(r.Rows[row][col])[0]
	s = strings.TrimSuffix(s, "x")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		b.Fatalf("cell %q: %v", r.Rows[row][col], err)
	}
	return v
}

func BenchmarkFig2DelayComposition(b *testing.B) {
	var snd, net, rcv float64
	for i := 0; i < b.N; i++ {
		r := exp.Fig2(int64(i+1), benchDur)
		snd = cellValue(b, r, 0, 1)
		net = cellValue(b, r, 1, 1)
		rcv = cellValue(b, r, 2, 1)
	}
	b.ReportMetric(snd, "sender-ms")
	b.ReportMetric(net, "network-ms")
	b.ReportMetric(rcv, "receiver-ms")
}

func BenchmarkFig3AQMComparison(b *testing.B) {
	var fifoNet, codelNet float64
	for i := 0; i < b.N; i++ {
		r := exp.Fig3(int64(i+1), 15*units.Second)
		for _, row := range r.Rows {
			if row[0] == "wired-low-bw" && row[1] == "pfifo_fast" {
				v, _ := strconv.ParseFloat(row[3], 64)
				fifoNet = v
			}
			if row[0] == "wired-low-bw" && row[1] == "codel" {
				v, _ := strconv.ParseFloat(row[3], 64)
				codelNet = v
			}
		}
	}
	b.ReportMetric(fifoNet, "fifo-net-ms")
	b.ReportMetric(codelNet, "codel-net-ms")
}

func BenchmarkTable1Tools(b *testing.B) {
	var gtSnd, elSnd, ping float64
	for i := 0; i < b.N; i++ {
		r := exp.Table1(int64(i+1), 3, benchDur)
		gtSnd = cellValue(b, r, 0, 1)
		elSnd = cellValue(b, r, 1, 1)
		ping = cellValue(b, r, 2, 2)
	}
	b.ReportMetric(gtSnd, "truth-snd-s")
	b.ReportMetric(elSnd, "element-snd-s")
	b.ReportMetric(ping, "tcpping-rtt-s")
}

func BenchmarkFig6Accuracy(b *testing.B) {
	var estMean, actMean float64
	for i := 0; i < b.N; i++ {
		r := exp.Fig6(int64(i+1), benchDur)
		estMean = cellValue(b, r, 0, 2)
		actMean = cellValue(b, r, 1, 2)
	}
	b.ReportMetric(estMean, "est-snd-ms")
	b.ReportMetric(actMean, "actual-snd-ms")
}

func BenchmarkFig7Environments(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		r := exp.Fig7(int64(i+1), 12*units.Second)
		worst = 100
		for _, row := range r.Rows {
			v, _ := strconv.ParseFloat(row[5], 64)
			if v < worst {
				worst = v
			}
		}
	}
	b.ReportMetric(worst, "worst-env-acc-%")
}

func BenchmarkFig8Dynamics(b *testing.B) {
	var acc float64
	for i := 0; i < b.N; i++ {
		r := exp.Fig8(int64(i+1), 60*units.Second)
		acc = cellValue(b, r, 0, 4)
	}
	b.ReportMetric(acc, "dynbw-acc-%")
}

func BenchmarkFig9BufferSizing(b *testing.B) {
	var emTput, emDelay, autoDelay float64
	for i := 0; i < b.N; i++ {
		r := exp.Fig9(int64(i+1), benchDur)
		for j, row := range r.Rows {
			switch row[0] {
			case "ELEMENT":
				emTput = cellValue(b, r, j, 1)
				emDelay = cellValue(b, r, j, 2)
			case "auto-tuning":
				autoDelay = cellValue(b, r, j, 2)
			}
		}
	}
	b.ReportMetric(emTput, "elem-tput-Mbps")
	b.ReportMetric(emDelay, "elem-delay-ms")
	b.ReportMetric(autoDelay, "autotune-delay-ms")
}

func BenchmarkFig10BufferedAmount(b *testing.B) {
	var alone, withEM float64
	for i := 0; i < b.N; i++ {
		r := exp.Fig10(int64(i+1), benchDur)
		alone = cellValue(b, r, 0, 1)
		withEM = cellValue(b, r, 1, 1)
	}
	b.ReportMetric(alone, "cubic-maxbuf-KB")
	b.ReportMetric(withEM, "element-maxbuf-KB")
}

func BenchmarkFig13Grid(b *testing.B) {
	var bestRatio float64
	for i := 0; i < b.N; i++ {
		r := exp.Fig13(int64(i+1), benchDur)
		bestRatio = 0
		for j := range r.Rows {
			if v := cellValue(b, r, j, 4); v > bestRatio {
				bestRatio = v
			}
		}
	}
	b.ReportMetric(bestRatio, "best-delay-ratio-x")
}

func BenchmarkFig14Production(b *testing.B) {
	var lteRatio float64
	for i := 0; i < b.N; i++ {
		r := exp.Fig14(int64(i+1), benchDur)
		for j, row := range r.Rows {
			if row[0] == "lte" && row[1] == "upload" {
				lteRatio = cellValue(b, r, j, 4)
			}
		}
	}
	b.ReportMetric(lteRatio, "lte-upload-ratio-x")
}

func BenchmarkFig15CCInteraction(b *testing.B) {
	var cubicSnd, cubicEMSnd, bbrSnd float64
	for i := 0; i < b.N; i++ {
		r := exp.Fig15(int64(i+1), benchDur)
		for j, row := range r.Rows {
			switch row[0] {
			case "cubic":
				cubicSnd = cellValue(b, r, j, 1)
			case "cubic+ELEMENT":
				cubicEMSnd = cellValue(b, r, j, 1)
			case "bbr":
				bbrSnd = cellValue(b, r, j, 1)
			}
		}
	}
	b.ReportMetric(cubicSnd, "cubic-snd-s")
	b.ReportMetric(cubicEMSnd, "cubic+EM-snd-s")
	b.ReportMetric(bbrSnd, "bbr-snd-s")
}

func BenchmarkFig16UDPComparison(b *testing.B) {
	var sproutDelay, elemDelay, elemTput float64
	for i := 0; i < b.N; i++ {
		r := exp.Fig16(int64(i+1), 30*units.Second)
		for j, row := range r.Rows {
			if row[1] != "low-latency" {
				continue
			}
			switch row[0] {
			case "sprout":
				sproutDelay = cellValue(b, r, j, 2)
			case "ELEMENT":
				elemDelay = cellValue(b, r, j, 2)
				elemTput = cellValue(b, r, j, 3)
			}
		}
	}
	b.ReportMetric(sproutDelay, "sprout-delay-s")
	b.ReportMetric(elemDelay, "elem-delay-s")
	b.ReportMetric(elemTput, "elem-tput-Mbps")
}

func BenchmarkFig18VR(b *testing.B) {
	var cubicMiss, elemMiss float64
	for i := 0; i < b.N; i++ {
		r := exp.Fig18(int64(i+1), benchDur)
		for j, row := range r.Rows {
			switch row[0] {
			case "cubic alone":
				cubicMiss = cellValue(b, r, j, 5)
			case "ELEMENT+cubic":
				elemMiss = cellValue(b, r, j, 5)
			}
		}
	}
	b.ReportMetric(cubicMiss, "cubic-miss-%")
	b.ReportMetric(elemMiss, "elem-miss-%")
}

// BenchmarkTrackerOverhead measures the real CPU cost of one ELEMENT
// TCP_INFO poll plus write-record bookkeeping — the §7 overhead question at
// the granularity a Go profile cares about. The telemetry=on/off variants
// expose what instrumentation adds to that hot loop, and scenario-overhead
// asserts that a fully instrumented end-to-end run stays within the small
// single-digit percentage the paper reports (§7, ≈4%).
func BenchmarkTrackerOverhead(b *testing.B) {
	hotLoop := func(b *testing.B, telem *telemetry.Telemetry) {
		eng := sim.New(1)
		src := &staticInfo{info: tcpinfo.TCPInfo{
			BytesAcked: 1 << 20, Unacked: 10, SndMSS: 1460, SndCwnd: 100,
			RTT: 50 * units.Millisecond,
		}}
		tr := core.NewSenderTracker(eng, src, units.Second) // self-ticks disabled in practice
		tr.Instrument(telem.Scope("core"))                  // nil telem → no-op scope
		cum := uint64(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cum += 1460
			tr.OnWrite(cum)
			src.info.BytesAcked = cum
			tr.PollOnce()
		}
	}
	b.Run("telemetry=off", func(b *testing.B) { hotLoop(b, nil) })
	b.Run("telemetry=on", func(b *testing.B) { hotLoop(b, telemetry.New()) })

	// Scenario-level comparison: a whole instrumented run (every layer
	// recording) against the identical uninstrumented run. The hot-loop
	// variants above amplify the per-site cost; this is the number that
	// corresponds to the paper's CPU-overhead claim.
	b.Run("scenario-overhead", func(b *testing.B) {
		scenario := func(seed int64, telem *telemetry.Telemetry) {
			exp.RunScenario(exp.ScenarioConfig{
				Seed: seed, Rate: 10 * units.Mbps, RTT: 50 * units.Millisecond,
				Disc: aqm.KindFIFO, QueuePackets: 100, Duration: 60 * units.Second,
				Flows:     []exp.FlowSpec{{Element: true}},
				Telemetry: telem,
			})
		}
		// testing.Benchmark cannot run inside an active benchmark (it
		// contends on the harness lock), so time the runs directly. Each rep
		// times a base/instrumented pair back to back (alternating which goes
		// first), so machine-load drift hits both sides of the ratio equally.
		// Timing noise on a shared machine is one-sided — background load
		// only ever makes a run slower — so the low end of the ratio
		// distribution is the closest estimate of the true overhead; the
		// second-smallest ratio additionally discards a pair whose base run
		// got inflated. Both variants use identical seeds, so they simulate
		// byte-identical event sequences.
		run := func(rep int, instrumented bool) float64 {
			var telem *telemetry.Telemetry
			if instrumented {
				telem = telemetry.New()
			}
			start := time.Now()
			scenario(int64(rep+1), telem)
			return time.Since(start).Seconds()
		}
		// Warm both paths once.
		scenario(1, nil)
		scenario(1, telemetry.New())
		var ratios []float64
		for rep := 0; rep < 7; rep++ {
			var base, instr float64
			if rep%2 == 0 {
				base = run(rep, false)
				instr = run(rep, true)
			} else {
				instr = run(rep, true)
				base = run(rep, false)
			}
			ratios = append(ratios, instr/base)
		}
		sort.Float64s(ratios)
		pct := (ratios[1] - 1) * 100
		if pct < 0 {
			pct = 0 // below the noise floor
		}
		b.ReportMetric(pct, "overhead-%")
		if pct > 5 {
			b.Errorf("telemetry overhead %.1f%% exceeds the ~5%% budget (paper §7 reports ≈4%%)", pct)
		}
		for i := 0; i < b.N; i++ {
			// The comparison above is the payload; nothing per-iteration.
		}
	})
}

// BenchmarkStreamOverhead times the identical seeded fleet with the
// streaming telemetry pipeline on and off, the same alternating-pair
// second-smallest-ratio protocol as scenario-overhead above. This is the
// -stream flag's end-to-end cost: tracker estimates drained into
// windowed quantile sketches, merged at every barrier, windows sealed
// and exported — all of which must stay within the ~5% budget the
// telemetry-overhead contract set. (Stream mode also drops the
// per-connection ground-truth collectors, so the measured ratio is
// usually below 1; the gate catches the streaming hot path ever growing
// into something per-sample expensive.)
func BenchmarkStreamOverhead(b *testing.B) {
	fleetRun := func(seed int64, streaming bool) {
		cfg := fleet.Config{
			Seed: seed, Connections: 32, Duration: 2 * units.Second,
			Rate: 2 * units.Mbps, Interval: 20 * units.Millisecond, Shards: 1,
		}
		if streaming {
			cfg.Stream = &fleet.StreamConfig{
				Window: 250 * units.Millisecond,
				Sink:   stream.SinkFunc(func([]string, *stream.Window) error { return nil }),
			}
		}
		fleet.New(cfg).Run()
	}
	fleetRun(1, false) // warm both paths
	fleetRun(1, true)
	var ratios []float64
	for rep := 0; rep < 7; rep++ {
		var base, instr float64
		timed := func(streaming bool) float64 {
			start := time.Now()
			fleetRun(int64(rep+1), streaming)
			return time.Since(start).Seconds()
		}
		if rep%2 == 0 {
			base = timed(false)
			instr = timed(true)
		} else {
			instr = timed(true)
			base = timed(false)
		}
		ratios = append(ratios, instr/base)
	}
	sort.Float64s(ratios)
	pct := (ratios[1] - 1) * 100
	if pct < 0 {
		pct = 0 // streaming is cheaper than exit-export ground truth
	}
	b.ReportMetric(pct, "overhead-%")
	if pct > 5 {
		b.Errorf("streaming overhead %.1f%% exceeds the ~5%% budget", pct)
	}
	for i := 0; i < b.N; i++ {
		// The comparison above is the payload; nothing per-iteration.
	}
}

// staticInfo is a fixed TCP_INFO source for micro-benchmarks.
type staticInfo struct{ info tcpinfo.TCPInfo }

func (s *staticInfo) GetsockoptTCPInfo() tcpinfo.TCPInfo { return s.info }
func (s *staticInfo) SetSndBuf(int)                      {}

// traceCollector shortens the constructor for the ablation helpers.
func traceCollector(eng *sim.Engine) *trace.Collector { return trace.New(eng) }

// BenchmarkAblationPollInterval sweeps ELEMENT's polling period P and
// reports the resulting sender-side estimation accuracy (DESIGN.md §5).
func BenchmarkAblationPollInterval(b *testing.B) {
	for _, interval := range []units.Duration{units.Millisecond, 10 * units.Millisecond, 100 * units.Millisecond} {
		interval := interval
		b.Run(interval.String(), func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				acc = senderAccuracyWithInterval(int64(i+1), interval)
			}
			b.ReportMetric(acc*100, "accuracy-%")
		})
	}
}

func senderAccuracyWithInterval(seed int64, interval units.Duration) float64 {
	eng := sim.New(seed)
	disc := aqm.MustNew(aqm.KindFIFO, aqm.Config{LimitPackets: 100}, eng.Rand())
	path := netem.NewPath(eng, netem.PathConfig{
		Forward: netem.LinkConfig{Rate: 10 * units.Mbps, Delay: 25 * units.Millisecond, Discipline: disc},
		Reverse: netem.LinkConfig{Rate: 10 * units.Mbps, Delay: 25 * units.Millisecond},
	})
	net := stack.NewNet(eng, path)
	col := traceCollector(eng)
	conn := stack.Dial(net, stack.ConnConfig{
		CC: cc.KindCubic, SenderHooks: col.SenderHooks(), ReceiverHooks: col.ReceiverHooks(),
	})
	snd := core.AttachSender(eng, conn.Sender, core.Options{Interval: interval})
	eng.Spawn("w", func(p *sim.Proc) {
		for snd.Send(p, 16<<10).Size > 0 {
		}
	})
	eng.Spawn("r", func(p *sim.Proc) {
		for conn.Receiver.Read(p, 1<<20) > 0 {
		}
	})
	eng.RunUntil(units.Time(benchDur))
	eng.Shutdown()

	est := snd.Estimates().Series()
	truth := col.SenderDelay()
	if len(est) == 0 || len(truth) == 0 {
		return 0
	}
	var errSum float64
	n := 0
	for _, s := range est {
		gt, ok := truth.At(s.At)
		if !ok {
			continue
		}
		d := (s.Delay - gt).Seconds()
		if d < 0 {
			d = -d
		}
		errSum += d
		n++
	}
	if n == 0 {
		return 0
	}
	return 1 - (errSum/float64(n))/truth.Mean().Seconds()
}

// BenchmarkAblationMinimizerParams sweeps Algorithm 3's D_thr and reports
// the delay/throughput trade-off.
func BenchmarkAblationMinimizerParams(b *testing.B) {
	for _, dthr := range []units.Duration{10 * units.Millisecond, 25 * units.Millisecond, 100 * units.Millisecond} {
		dthr := dthr
		b.Run("Dthr="+dthr.String(), func(b *testing.B) {
			var delay, tput float64
			for i := 0; i < b.N; i++ {
				delay, tput = minimizerTradeoff(int64(i+1), dthr)
			}
			b.ReportMetric(delay*1000, "snd-delay-ms")
			b.ReportMetric(tput/1e6, "tput-Mbps")
		})
	}
}

func minimizerTradeoff(seed int64, dthr units.Duration) (delaySec, tputBps float64) {
	eng := sim.New(seed)
	disc := aqm.MustNew(aqm.KindFIFO, aqm.Config{LimitPackets: 100}, eng.Rand())
	path := netem.NewPath(eng, netem.PathConfig{
		Forward: netem.LinkConfig{Rate: 10 * units.Mbps, Delay: 25 * units.Millisecond, Discipline: disc},
		Reverse: netem.LinkConfig{Rate: 10 * units.Mbps, Delay: 25 * units.Millisecond},
	})
	net := stack.NewNet(eng, path)
	col := traceCollector(eng)
	conn := stack.Dial(net, stack.ConnConfig{
		CC: cc.KindCubic, SenderHooks: col.SenderHooks(), ReceiverHooks: col.ReceiverHooks(),
	})
	snd := core.AttachSender(eng, conn.Sender, core.Options{
		Minimize:  true,
		Minimizer: core.MinimizerConfig{Dthr: dthr},
	})
	eng.Spawn("w", func(p *sim.Proc) {
		for snd.Send(p, 16<<10).Size > 0 {
		}
	})
	eng.Spawn("r", func(p *sim.Proc) {
		for conn.Receiver.Read(p, 1<<20) > 0 {
		}
	})
	eng.RunUntil(units.Time(benchDur))
	eng.Shutdown()
	return col.SenderDelay().Mean().Seconds(),
		float64(conn.Receiver.ReadCum()) * 8 / benchDur.Seconds()
}

// BenchmarkAblationAutotune contrasts the send-buffer auto-tuner (the
// bufferbloat driver) against a fixed buffer at the same scenario.
func BenchmarkAblationAutotune(b *testing.B) {
	for _, fixed := range []int{0, 128 << 10} {
		fixed := fixed
		name := "autotune"
		if fixed > 0 {
			name = "fixed-128KiB"
		}
		b.Run(name, func(b *testing.B) {
			var delay float64
			for i := 0; i < b.N; i++ {
				s := exp.RunScenario(exp.ScenarioConfig{
					Seed: int64(i + 1), Rate: 10 * units.Mbps, RTT: 50 * units.Millisecond,
					Disc: aqm.KindFIFO, QueuePackets: 100, Duration: benchDur,
					Flows: []exp.FlowSpec{{SndBuf: fixed}},
				})
				delay = s.Flows[0].GT.SenderDelay().Mean().Seconds()
			}
			b.ReportMetric(delay*1000, "snd-delay-ms")
		})
	}
}

// BenchmarkSimulatorThroughput reports raw engine performance: simulated
// seconds of a loaded 3-flow testbed per wall-clock second.
func BenchmarkSimulatorThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.RunScenario(exp.ScenarioConfig{
			Seed: int64(i + 1), Rate: 10 * units.Mbps, RTT: 50 * units.Millisecond,
			Disc: aqm.KindFIFO, Duration: 10 * units.Second,
			Flows: []exp.FlowSpec{{}, {}, {}},
		})
	}
	b.ReportMetric(float64(10*b.N)/b.Elapsed().Seconds(), "sim-s/wall-s")
}
