GO ?= go

.PHONY: check fmt vet staticcheck build test bench bench-smoke bench-baseline bench-gate soak soak-short soak-overload soak-overload-short soak-scale soak-scale-short conformance conformance-short

## check: the full local gate — format, vet, staticcheck, build,
## race-enabled tests, the CI-sized overload and scale soaks, and the
## CI-sized conformance gate.
check: fmt vet staticcheck build test soak-overload-short soak-scale-short conformance-short

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# staticcheck is part of the gate when the binary is present; a machine
# without it (the bare container image) skips with a notice instead of
# failing, and CI installs a pinned version so the check is always
# enforced there.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck: not installed, skipping (CI enforces it)"; \
	fi

build:
	$(GO) build ./...

# The exp package replays every table/figure scenario; under the race
# detector that runs well past go test's default 10 m per-package timeout
# (~35 min on a loaded box). -shuffle=on randomizes test order so
# inter-test state dependencies surface instead of hiding behind source
# order; failures print the shuffle seed to reproduce.
test:
	$(GO) test -race -shuffle=on -timeout 60m ./...

## conformance: the full analytical-twin conformance run — every
## hypothesis fit across seeds 1..5 at full sweep resolution plus the
## bound-calibration matrix over every fault profile. Regenerates the
## committed hypotheses/*/FINDINGS.md and CONFORMANCE.json; rerun after
## intentional physics changes and commit the result.
conformance:
	$(GO) run ./cmd/elemtwin -out .

## conformance-short: the CI-sized conformance gate (reduced sweeps,
## same hypotheses, same calibration profiles; exits non-zero when any
## hypothesis is refuted or any coverage target is missed). Artifacts go
## to ./conformance-out, which CI uploads.
conformance-short:
	@mkdir -p conformance-out
	$(GO) run ./cmd/elemtwin -short -out conformance-out

## soak: the fleet churn soak — ≥1000 supervised connections with
## open/close/crash/stall churn under the race detector, asserting zero
## goroutine leaks, zero bounded-or-flagged violations, and identical
## restart/eviction counters across two same-seed runs (~2 min). The
## first run executes sharded (FLEET_SOAK_SHARDS workers), the second
## single-shard, so the soak also proves shard-count invariance at scale.
soak:
	FLEET_SOAK_CONNS=1000 FLEET_SOAK_SHARDS=4 $(GO) test -race -timeout 30m -run TestFleetSoak -v ./internal/fleet/

## soak-short: the CI-sized soak (~100 connections, ~20 s).
soak-short:
	FLEET_SOAK_CONNS=100 FLEET_SOAK_SHARDS=4 $(GO) test -race -timeout 10m -run TestFleetSoak -v ./internal/fleet/

## soak-overload: the overload-governor chaos soak — repeated
## overload/recovery cycles against a flapping export sink under the race
## detector, across several seeds and shard counts, asserting zero
## goroutine leaks, monotone bound-widening while flows are shed,
## re-tightened bounds after recovery, and byte-identical same-seed
## results at every shard count.
soak-overload:
	ELEMENT_SOAK=1 $(GO) test -race -timeout 30m -run 'TestFleetOverloadSoak$$' -v ./internal/fleet/

## soak-overload-short: the CI-sized overload soak (one seed, ~seconds).
soak-overload-short:
	$(GO) test -race -timeout 10m -run TestFleetOverloadSoakShort -v ./internal/fleet/

## soak-scale: the million-monitor-mode scale soak — 100k closed-form
## flows through the per-shard event loops (hashed timer wheel, SoA
## lite columns, budget-gated two-phase escalation) under the race
## detector, asserting zero goroutine leaks and a byte-identical result
## across two different shard counts of the same seed.
soak-scale:
	$(GO) test -race -timeout 30m -run 'TestFleetScaleSoak$$' -v ./internal/fleet/

## soak-scale-short: the CI-sized scale soak (10k flows).
soak-scale-short:
	$(GO) test -race -short -timeout 10m -run 'TestFleetScaleSoak$$' -v ./internal/fleet/

## bench: every table/figure benchmark plus the overhead ablations.
bench:
	$(GO) test -bench=. -benchmem ./...

## bench-smoke: every benchmark once (-benchtime 1x); writes a
## machine-readable BENCH_<date>.json snapshot for before/after diffs.
bench-smoke:
	$(GO) run ./cmd/benchsmoke

## bench-baseline: regenerate the committed benchmark baseline the gate
## compares against. Run on the reference machine after intentional
## performance changes, and commit the result.
bench-baseline:
	$(GO) run ./cmd/benchsmoke -o BENCH_baseline.json

## bench-gate: the benchmark-regression gate — rerun every benchmark and
## fail on any regression against BENCH_baseline.json (allocs/op gated
## tightly since it is machine-independent; ns/op only against
## order-of-magnitude blowups — see internal/benchgate).
bench-gate:
	$(GO) run ./cmd/benchsmoke -gate BENCH_baseline.json
