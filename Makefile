GO ?= go

.PHONY: check fmt vet build test bench bench-smoke

## check: the full local gate — format, vet, build, race-enabled tests.
check: fmt vet build test

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# The exp package replays every table/figure scenario; under the race
# detector that runs well past go test's default 10 m per-package timeout
# (~35 min on a loaded box).
test:
	$(GO) test -race -timeout 60m ./...

## bench: every table/figure benchmark plus the overhead ablations.
bench:
	$(GO) test -bench=. -benchmem ./...

## bench-smoke: every benchmark once (-benchtime 1x); writes a
## machine-readable BENCH_<date>.json snapshot for before/after diffs.
bench-smoke:
	$(GO) run ./cmd/benchsmoke
