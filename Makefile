GO ?= go

.PHONY: check fmt vet build test bench bench-smoke soak soak-short

## check: the full local gate — format, vet, build, race-enabled tests.
check: fmt vet build test

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# The exp package replays every table/figure scenario; under the race
# detector that runs well past go test's default 10 m per-package timeout
# (~35 min on a loaded box).
test:
	$(GO) test -race -timeout 60m ./...

## soak: the fleet churn soak — ≥1000 supervised connections with
## open/close/crash/stall churn under the race detector, asserting zero
## goroutine leaks, zero bounded-or-flagged violations, and identical
## restart/eviction counters across two same-seed runs (~2 min).
soak:
	FLEET_SOAK_CONNS=1000 $(GO) test -race -timeout 30m -run TestFleetSoak -v ./internal/fleet/

## soak-short: the CI-sized soak (~100 connections, ~20 s).
soak-short:
	FLEET_SOAK_CONNS=100 $(GO) test -race -timeout 10m -run TestFleetSoak -v ./internal/fleet/

## bench: every table/figure benchmark plus the overhead ablations.
bench:
	$(GO) test -bench=. -benchmem ./...

## bench-smoke: every benchmark once (-benchtime 1x); writes a
## machine-readable BENCH_<date>.json snapshot for before/after diffs.
bench-smoke:
	$(GO) run ./cmd/benchsmoke
